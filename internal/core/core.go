// Package core implements Whisper's primary contribution (paper §III):
// profile-guided branch misprediction elimination through
//
//  1. hashed history correlation — correlating a branch's direction with
//     the XOR-folded hash of variable-length histories drawn from a
//     geometric series (a=8, N=1024, m=16),
//  2. randomized formula testing — scoring only a Fisher-Yates-randomized
//     subset of the 2^15 extended Boolean formulas, and
//  3. extended Read-Once Monotone Boolean Formulas with Implication and
//     Converse Non-Implication.
//
// Training consumes an in-production profile (internal/profiler), selects
// the best (history length, formula) pair per hard branch with the
// paper's Algorithm 1, and keeps a hint only when it beats the profiled
// predictor. Link-time injection (internal/cfg placement + internal/hint
// encoding) produces an "updated binary"; the Runtime type models the
// hint buffer and micro-architectural formula evaluation next to the
// baseline predictor.
package core

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// Params are Whisper's design parameters (paper Table III).
type Params struct {
	// MinHistory, MaxHistory, NumLengths define the geometric series
	// (8, 1024, 16).
	MinHistory, MaxHistory, NumLengths int
	// ExploreFraction is the share of all 2^15 formulas that randomized
	// formula testing scores per branch. The paper reports 0.1% as its
	// knee; with this reproduction's uniform synthetic fold
	// distributions the accuracy landscape is sparser and the knee sits
	// near 5% (see EXPERIMENTS.md, Fig 15), which is the default here.
	// Values >= 1 switch to the exact factorized exhaustive search.
	ExploreFraction float64
	// Seed drives the shared Fisher-Yates permutation.
	Seed uint64
	// MinExecs skips branches with too few profile samples.
	MinExecs uint64
	// MinGainFrac and MinGainAbs set the deployment bar: a hint is kept
	// only when its profiled mispredictions undercut the baseline's by
	// at least MinGainFrac (relative) and MinGainAbs (absolute).
	// Marginal hints do not survive input drift (paper Fig 17), so the
	// bar trades a little same-input reduction for cross-input
	// robustness.
	MinGainFrac float64
	MinGainAbs  uint64

	// HashedHistory enables technique (1); when false only the raw
	// 8-bit history is considered (the Fig 14 ablation).
	HashedHistory bool
	// ExtendedOps enables technique (3); when false candidate formulas
	// are restricted to AND/OR trees (plus inversion is disabled), i.e.
	// plain ROMBF expressiveness.
	ExtendedOps bool
	// NoValidation deploys hints on training-half numbers alone,
	// skipping the held-out check (the literal Algorithm 1; an ablation
	// showing why the validation split exists — without it, formulas
	// that fit profile noise ship and regress on unseen inputs).
	NoValidation bool
}

// DefaultParams returns Table III.
func DefaultParams() Params {
	return Params{
		MinHistory:      bpu.GeomMin,
		MaxHistory:      bpu.GeomMax,
		NumLengths:      bpu.GeomCount,
		ExploreFraction: 0.05,
		Seed:            0x3B157E12,
		MinExecs:        20,
		MinGainFrac:     0.10,
		MinGainAbs:      2,
		HashedHistory:   true,
		ExtendedOps:     true,
	}
}

// Lengths returns the geometric series for the parameters.
func (p Params) Lengths() []int {
	return bpu.GeomLengths(p.MinHistory, p.MaxHistory, p.NumLengths)
}

// Hint is one trained Whisper annotation prior to injection.
type Hint struct {
	PC uint64
	// LengthIdx indexes Params.Lengths(); meaningful when Bias is
	// BiasNone.
	LengthIdx int
	Formula   formula.Formula
	Bias      hint.Bias
	// ProfiledMisp is the hint's misprediction count on the training
	// histograms; BaselineMisp the profiled predictor's over the full
	// window; ValMisp the hint's count on the held-out validation half.
	ProfiledMisp, BaselineMisp, ValMisp uint64
}

// TrainResult carries the hints plus training cost (paper Figs 15/16).
type TrainResult struct {
	Hints    map[uint64]Hint
	Params   Params
	Lengths  []int
	Trained  int
	Duration time.Duration
	// FormulaEvals counts Algorithm 1 formula scorings (the randomized
	// testing exploration cost).
	FormulaEvals uint64
}

// candidateSet is the shared randomized formula order plus precomputed
// truth tables for the explored prefix.
type candidateSet struct {
	formulas []formula.Formula
	tables   []formula.TruthTable
}

// buildCandidates constructs the explored candidate list: a single
// Fisher-Yates permutation of the full encoding space, generated once and
// shared across branches (paper §III-B), truncated to the explore
// fraction. With ExtendedOps disabled, the space is first filtered to
// AND/OR-only, non-inverted trees (ROMBF expressiveness).
func buildCandidates(p Params) *candidateSet {
	rng := xrand.New(p.Seed)
	perm := rng.Perm16(formula.NumFormulas)
	var pool []formula.Formula
	if p.ExtendedOps {
		pool = make([]formula.Formula, len(perm))
		for i, enc := range perm {
			pool[i] = formula.Formula(enc)
		}
	} else {
		for _, enc := range perm {
			f := formula.Formula(enc)
			if f.Inverted() {
				continue
			}
			ok := true
			for u := 0; u < formula.Units; u++ {
				if op := f.UnitOp(u); op != formula.And && op != formula.Or {
					ok = false
					break
				}
			}
			if ok {
				pool = append(pool, f)
			}
		}
	}
	n := int(float64(len(pool))*p.ExploreFraction + 0.999999)
	if n < 1 {
		n = 1
	}
	if n > len(pool) {
		n = len(pool)
	}
	cs := &candidateSet{formulas: pool[:n], tables: make([]formula.TruthTable, n)}
	for i, f := range cs.formulas {
		cs.tables[i] = f.Table()
	}
	return cs
}

// findBooleanFormula is the paper's Algorithm 1: given taken/not-taken
// histogram tables keyed by hashed history, return the candidate formula
// with the fewest mispredictions. evals receives the number of formulas
// scored.
func findBooleanFormula(T, NT *[256]uint32, cs *candidateSet, evals *uint64) (best formula.Formula, bestMisp uint64) {
	bestMisp = ^uint64(0)
	var totalT uint64
	for h := 0; h < 256; h++ {
		totalT += uint64(T[h])
	}
	for i := range cs.formulas {
		tt := &cs.tables[i]
		// misp(f) = Σ_{¬f(h)} T[h] + Σ_{f(h)} NT[h]
		//         = totalT + Σ_{f(h)} (NT[h] - T[h])
		misp := int64(totalT)
		for w := 0; w < 4; w++ {
			word := tt[w]
			for word != 0 {
				h := w<<6 | trailingZeros64(word)
				misp += int64(NT[h]) - int64(T[h])
				word &= word - 1
			}
		}
		*evals++
		if uint64(misp) < bestMisp {
			bestMisp = uint64(misp)
			best = cs.formulas[i]
		}
	}
	return best, bestMisp
}

func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

// --- Exhaustive search ---------------------------------------------------
//
// Scoring all 2^15 formulas naively costs |F| x 256 operations per
// (branch, length). The complete-tree structure factorizes the search:
// the root combines u4 (a function of the low history nibble, 64
// encodings) with u5 (a function of the high nibble, 64 encodings), so
// with per-encoding nibble tables and partial sums the exact optimum over
// the whole space costs ~150k operations.

// nibbleFuncs[e][v] is the output of the 3-unit subtree with encoding e
// (2 bits per unit: units a, b feed unit c) on the 4-bit input v.
var nibbleFuncs = func() (t [64][16]bool) {
	for e := 0; e < 64; e++ {
		opA := formula.Op(e & 3)
		opB := formula.Op((e >> 2) & 3)
		opC := formula.Op((e >> 4) & 3)
		for v := 0; v < 16; v++ {
			b0 := v&1 != 0
			b1 := v&2 != 0
			b2 := v&4 != 0
			b3 := v&8 != 0
			t[e][v] = opC.Apply(opA.Apply(b0, b1), opB.Apply(b2, b3))
		}
	}
	return
}()

// encodeFromParts rebuilds the 15-bit encoding from the low-nibble
// subtree encoding (units 0,1,4), high-nibble encoding (units 2,3,5),
// root op (unit 6), and inversion flag.
func encodeFromParts(lo, hi int, root formula.Op, inv bool) formula.Formula {
	ops := []formula.Op{
		formula.Op(lo & 3),        // unit 0: (b0,b1)
		formula.Op((lo >> 2) & 3), // unit 1: (b2,b3)
		formula.Op(hi & 3),        // unit 2: (b4,b5)
		formula.Op((hi >> 2) & 3), // unit 3: (b6,b7)
		formula.Op((lo >> 4) & 3), // unit 4: (u0,u1)
		formula.Op((hi >> 4) & 3), // unit 5: (u2,u3)
		root,                      // unit 6
	}
	return formula.New(ops, inv)
}

// findBooleanFormulaExhaustive returns the exact optimum over all 2^15
// extended formulas for the histogram pair.
func findBooleanFormulaExhaustive(T, NT *[256]uint32, evals *uint64) (formula.Formula, uint64) {
	// D[h] = NT[h] - T[h]; misp(f) = totalT + sum_{f(h)} D[h].
	var D [256]int64
	var totalT int64
	for h := 0; h < 256; h++ {
		D[h] = int64(NT[h]) - int64(T[h])
		totalT += int64(T[h])
	}
	bestMisp := int64(1) << 62
	var best formula.Formula
	// S[a][hi] for the current low encoding: sum over low nibbles where
	// u4 output is a.
	var S [2][16]int64
	for lo := 0; lo < 64; lo++ {
		fl := &nibbleFuncs[lo]
		for hi4 := 0; hi4 < 16; hi4++ {
			var s0, s1 int64
			for lo4 := 0; lo4 < 16; lo4++ {
				d := D[hi4<<4|lo4]
				if fl[lo4] {
					s1 += d
				} else {
					s0 += d
				}
			}
			S[0][hi4] = s0
			S[1][hi4] = s1
		}
		for hi := 0; hi < 64; hi++ {
			fh := &nibbleFuncs[hi]
			// W[a][b] = sum over (lo4,hi4) with u4=a, u5=b of D.
			var w00, w01, w10, w11 int64
			for hi4 := 0; hi4 < 16; hi4++ {
				if fh[hi4] {
					w01 += S[0][hi4]
					w11 += S[1][hi4]
				} else {
					w00 += S[0][hi4]
					w10 += S[1][hi4]
				}
			}
			for rootOp := formula.Op(0); rootOp < formula.NumOps; rootOp++ {
				// sumOn = sum of D over inputs where the root output is 1.
				var sumOn int64
				if rootOp.Apply(false, false) {
					sumOn += w00
				}
				if rootOp.Apply(false, true) {
					sumOn += w01
				}
				if rootOp.Apply(true, false) {
					sumOn += w10
				}
				if rootOp.Apply(true, true) {
					sumOn += w11
				}
				total := w00 + w01 + w10 + w11
				for _, inv := range [2]bool{false, true} {
					on := sumOn
					if inv {
						on = total - sumOn
					}
					misp := totalT + on
					*evals += 1
					if misp < bestMisp {
						bestMisp = misp
						best = encodeFromParts(lo, hi, rootOp, inv)
					}
				}
			}
		}
	}
	return best, uint64(bestMisp)
}

// Train learns Whisper hints from a profile collected with the same
// geometric length series (profiler defaults).
func Train(p *profiler.Profile, params Params) (*TrainResult, error) {
	sp := telemetry.StartSpan("train")
	defer sp.End()
	lengths := params.Lengths()
	if len(p.Lengths) < len(lengths) {
		return nil, fmt.Errorf("core: profile has %d lengths, params need %d", len(p.Lengths), len(lengths))
	}
	for i, l := range lengths {
		if p.Lengths[i] != l {
			return nil, fmt.Errorf("core: profile length[%d]=%d, params expect %d", i, p.Lengths[i], l)
		}
	}
	start := time.Now()
	cs := buildCandidates(params)
	res := &TrainResult{
		Hints:   make(map[uint64]Hint),
		Params:  params,
		Lengths: lengths,
	}

	pcs := make([]uint64, 0, len(p.Hard))
	for pc := range p.Hard {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	nLengths := len(lengths)
	if !params.HashedHistory {
		nLengths = 1 // only the raw 8-bit history (lengths[0] == 8)
	}

	for _, pc := range pcs {
		hp := p.Hard[pc]
		// Evidence floor: a hint trained from a handful of executions is
		// statistically fragile, and under input drift a rarely-executed
		// branch can become hot — deploying on thin evidence risks large
		// regressions.
		if hp.Execs < params.MinExecs || hp.MeasExecs < params.MinExecs {
			continue
		}
		res.Trained++

		var takenTotal, ntTotal uint64
		for h := 0; h < 256; h++ {
			takenTotal += uint64(hp.T[0][h])
			ntTotal += uint64(hp.NT[0][h])
		}

		// Bias candidates: tautology and contradiction (2-bit Bias field).
		best := Hint{PC: pc, Bias: hint.BiasTaken, ProfiledMisp: ntTotal}
		if takenTotal < best.ProfiledMisp {
			best = Hint{PC: pc, Bias: hint.BiasNotTaken, ProfiledMisp: takenTotal}
		}

		// Hashed history correlation: pick the length whose best formula
		// mispredicts least on the training half (paper §III-A).
		exhaustive := params.ExploreFraction >= 1 && params.ExtendedOps
		for li := 0; li < nLengths; li++ {
			var f formula.Formula
			var misp uint64
			if exhaustive {
				f, misp = findBooleanFormulaExhaustive(&hp.T[li], &hp.NT[li], &res.FormulaEvals)
			} else {
				f, misp = findBooleanFormula(&hp.T[li], &hp.NT[li], cs, &res.FormulaEvals)
			}
			if misp < best.ProfiledMisp {
				best = Hint{PC: pc, LengthIdx: li, Formula: f, Bias: hint.BiasNone, ProfiledMisp: misp}
			}
		}
		best.BaselineMisp = hp.Misp

		// Validate the single selected candidate on the held-out half:
		// a formula that fit profile noise (a data-dependent branch) or
		// only the baseline predictor's cold start will not clear the
		// bar here, which is what keeps hints useful on unseen inputs
		// (paper Fig 17).
		valMisp := hintMispOn(best, &hp.VT, &hp.VNT)
		best.ValMisp = valMisp
		if params.NoValidation {
			if beatsBar(best.ProfiledMisp, hp.Misp, params.MinGainFrac, params.MinGainAbs) {
				res.Hints[pc] = best
			}
		} else if beatsBar(valMisp, hp.MispVal, params.MinGainFrac, params.MinGainAbs) {
			res.Hints[pc] = best
		}
	}
	res.Duration = time.Since(start)
	if r := telemetry.Default(); r != nil {
		r.Counter("whisper_train_runs_total").Inc()
		r.Counter("whisper_train_branches_total").Add(uint64(res.Trained))
		r.Counter("whisper_train_hints_total").Add(uint64(len(res.Hints)))
		r.Counter("whisper_train_formula_evals_total").Add(res.FormulaEvals)
	}
	return res, nil
}

// beatsBar reports whether hint mispredictions undercut the baseline by
// the configured relative and absolute margins.
func beatsBar(hintMisp, baseMisp uint64, frac float64, abs uint64) bool {
	if hintMisp+abs > baseMisp {
		return false
	}
	return float64(baseMisp-hintMisp) >= frac*float64(baseMisp)
}

// hintMispOn counts the hint's mispredictions over validation histograms.
func hintMispOn(h Hint, vt, vnt *[][256]uint32) uint64 {
	var misp uint64
	switch h.Bias {
	case hint.BiasTaken:
		for hh := 0; hh < 256; hh++ {
			misp += uint64((*vnt)[0][hh])
		}
	case hint.BiasNotTaken:
		for hh := 0; hh < 256; hh++ {
			misp += uint64((*vt)[0][hh])
		}
	default:
		tt := h.Formula.Table()
		for hh := 0; hh < 256; hh++ {
			if tt.Bit(uint8(hh)) {
				misp += uint64((*vnt)[h.LengthIdx][hh])
			} else {
				misp += uint64((*vt)[h.LengthIdx][hh])
			}
		}
	}
	return misp
}
