package core

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/snaptest"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// snapBinary builds a hand-made updated binary: three hosts, each
// carrying one hint, covering the bias short-circuits and a formula
// hint that reads the folded history.
func snapBinary(t *testing.T) *Binary {
	t.Helper()
	bin := &Binary{ByHost: make(map[uint64][]PlacedHint)}
	add := func(hostPC, branchPC uint64, b hint.Bias, f formula.Formula) {
		enc := hint.BrHint{
			HistIdx: 0,
			Formula: f,
			Bias:    b,
			Offset:  int16(int64(branchPC) - int64(hostPC)),
		}
		if err := enc.Validate(); err != nil {
			t.Fatal(err)
		}
		bin.ByHost[hostPC] = append(bin.ByHost[hostPC], PlacedHint{
			Hint:    Hint{PC: branchPC, Bias: b, Formula: f},
			Encoded: enc,
		})
		bin.Placed++
	}
	add(0x400000, 0x400010, hint.BiasTaken, 0)
	add(0x400100, 0x400110, hint.BiasNotTaken, 0)
	add(0x400200, 0x400210, hint.BiasNone, formula.Uniform(formula.And, false))
	return bin
}

// TestRuntimeSnapshotFidelity locks the bpu.Snapshotter contract for
// the whisper runtime: the hint buffer (recency order and counters),
// folded history, and the wrapped predictor must all survive a
// snapshot/restore round trip. The step retires host blocks so the
// hint buffer churns across the snapshot boundary.
func TestRuntimeSnapshotFidelity(t *testing.T) {
	bin := snapBinary(t)
	lengths := []int{8}
	mk := func() bpu.Predictor {
		return NewRuntime(tage.New(tage.Config{SizeKB: 8}), bin, lengths, 4)
	}
	step := func(p bpu.Predictor, r *xrand.Rand, i int) {
		rt := p.(*Runtime)
		if r.Bool(0.3) { // retire a host block, executing its hint
			host := 0x400000 + uint64(r.Intn(3))*0x100
			rt.OnRecord(&trace.Record{PC: host})
		}
		var pc uint64
		if r.Bool(0.4) { // hinted branch
			pc = 0x400010 + uint64(r.Intn(3))*0x100
		} else {
			pc = 0x500000 + r.Uint64n(512)*4
		}
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
	snaptest.Fidelity(t, mk, step)
}
