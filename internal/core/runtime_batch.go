package core

import (
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/hint"
)

// PassiveAt implements pipeline.PassiveHook: OnRecord only does work at
// PCs hosting hints, so the batched engine may run prediction spans
// straight through every other record. Records at host PCs flush the
// span before OnRecord runs, which keeps hint-buffer inserts ordered
// against lookups exactly as in the scalar loop.
func (r *Runtime) PassiveAt(pc uint64) bool {
	_, hosted := r.binary.ByHost[pc]
	return !hosted
}

// PredictUpdateBatch implements bpu.BatchPredictor. The hint buffer is
// stateful (lookup counters and LRU order), so Lookup runs exactly once
// per record in order, just like the scalar path; runs of buffer misses
// between hits are delegated to the underlying predictor's batch path.
// The hybrid's folded history is only read at buffer hits, so replaying
// a delegated span's outcomes into the history before evaluating the
// hit reproduces the scalar state bit for bit. The engine breaks spans
// at hint-hosting records (see PassiveAt), so no buffer insert can land
// inside one call.
func (r *Runtime) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	if r.underBatch == nil {
		r.underBatch = bpu.Batch(r.under)
	}
	start := 0
	flush := func(end int) {
		if start < end {
			r.underBatch.PredictUpdateBatch(pcs[start:end], taken[start:end], miss[start:end])
			for k := start; k < end; k++ {
				r.hist.Push(taken[k])
			}
		}
	}
	for i, pc := range pcs {
		h, ok := r.buffer.Lookup(pc)
		if !ok {
			continue
		}
		flush(i)
		r.HintPredictions++
		var pred bool
		switch h.Bias {
		case hint.BiasTaken:
			pred = true
		case hint.BiasNotTaken:
			pred = false
		default:
			l := r.lengths[h.HistIdx]
			pred = h.Formula.Eval(r.hist.Fold(l))
		}
		miss[i] = pred != taken[i]
		// As in the scalar path the underlying predictor still trains on
		// hinted branches (its Update re-predicts internally).
		r.under.Update(pc, taken[i])
		r.hist.Push(taken[i])
		start = i + 1
	}
	flush(len(pcs))
}
