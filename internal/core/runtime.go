package core

// Run-time hint usage (paper §IV): executing a brhint places its
// parameters in the hint buffer; predicting a branch queries the buffer
// and the baseline predictor simultaneously, uses the hint on a buffer
// hit, and keeps the baseline predictor from allocating entries for
// hint-covered branches.

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/trace"
)

// Runtime is the Whisper hybrid predictor: the updated binary's hints,
// the 32-entry hint buffer, and the underlying dynamic predictor.
// It implements bpu.Predictor plus the sim.RecordHook used to model hint
// execution at host retirement.
type Runtime struct {
	under      bpu.Predictor
	underBatch bpu.BatchPredictor
	binary     *Binary
	buffer     *hint.Buffer
	hist       bpu.History
	lengths    []int
	name       string

	// HintPredictions counts predictions served from the hint buffer;
	// HintExecutions counts brhint retirements (dynamic overhead).
	HintPredictions uint64
	HintExecutions  uint64
}

// NewRuntime builds the runtime over an underlying predictor. bufferSize
// 0 selects the Table III default (32 entries).
func NewRuntime(under bpu.Predictor, bin *Binary, lengths []int, bufferSize int) *Runtime {
	return NewRuntimeOpts(under, bin, lengths, bufferSize, true)
}

// NewRuntimeOpts is NewRuntime with the allocation-suppression policy
// explicit: suppress=false keeps hinted branches inside the baseline
// predictor's tables (an ablation of the paper's §IV policy).
func NewRuntimeOpts(under bpu.Predictor, bin *Binary, lengths []int, bufferSize int, suppress bool) *Runtime {
	r := &Runtime{
		under:      under,
		underBatch: bpu.Batch(under),
		binary:     bin,
		buffer:     hint.NewBuffer(bufferSize),
		lengths:    lengths,
		name:       fmt.Sprintf("whisper+%s", under.Name()),
	}
	// Hint-covered branches must not consume baseline predictor
	// capacity (paper §IV "run-time hint usage").
	if t, ok := under.(interface{ SuppressAllocation(uint64) }); ok && suppress {
		for _, pc := range bin.HintedPCs() {
			t.SuppressAllocation(pc)
		}
	}
	return r
}

// Buffer exposes the hint buffer for reporting.
func (r *Runtime) Buffer() *hint.Buffer { return r.buffer }

// Name implements bpu.Predictor.
func (r *Runtime) Name() string { return r.name }

// OnRecord models the retirement of any control-flow instruction: hints
// hosted at this PC execute and fill the hint buffer.
func (r *Runtime) OnRecord(rec *trace.Record) {
	if hs, ok := r.binary.ByHost[rec.PC]; ok {
		for i := range hs {
			ph := &hs[i]
			r.HintExecutions++
			r.buffer.Insert(ph.Hint.PC, ph.Encoded)
		}
	}
}

// Predict implements bpu.Predictor: hint-buffer hit uses the encoded
// formula over the folded history; miss falls back to the underlying
// predictor.
func (r *Runtime) Predict(pc uint64) bool {
	if h, ok := r.buffer.Lookup(pc); ok {
		r.HintPredictions++
		switch h.Bias {
		case hint.BiasTaken:
			return true
		case hint.BiasNotTaken:
			return false
		default:
			l := r.lengths[h.HistIdx]
			return h.Formula.Eval(r.hist.Fold(l))
		}
	}
	return r.under.Predict(pc)
}

// Update implements bpu.Predictor. The underlying predictor always
// trains (its history must track the global stream); suppression set up
// at construction keeps hinted branches out of its tables.
func (r *Runtime) Update(pc uint64, taken bool) {
	r.under.Update(pc, taken)
	r.hist.Push(taken)
}
