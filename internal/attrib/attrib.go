// Package attrib is the streaming per-branch misprediction attribution
// layer: where aggregate counters (pipeline.Result, internal/telemetry)
// answer "how many mispredictions", attrib answers "which static
// branches produced them, and what did the hints do about it" — the
// per-branch H2P view the paper's argument (and "Branch Prediction Is
// Not a Solved Problem") is built on.
//
// A Collector observes every measured conditional execution in trace
// order — (pc, taken, mispredicted) — and maintains exact per-branch
// counts for up to Capacity distinct branch PCs. Beyond the capacity,
// new PCs aggregate into a single overflow bucket, so memory stays
// bounded on adversarial traces while remaining exact on every real
// workload (static branch working sets are orders of magnitude below
// the default capacity). The eviction-free design is what makes the
// accounting deterministic: the same observation stream always produces
// the same state, regardless of which pipeline engine (scalar, batched,
// windowed) produced the observations.
//
// A nil *Collector is a valid no-op sink, mirroring internal/telemetry:
// the disabled hot path costs one nil check and zero allocations
// (pinned by BenchmarkObserveDisabled and CI's benchmark-smoke gate).
package attrib

import "sort"

// DefaultCapacity bounds the number of distinct branch PCs a Collector
// tracks exactly. At ~48 bytes/entry the worst case is ~12 MB; every
// synthetic and imported workload in this repo stays far below it.
const DefaultCapacity = 1 << 18

// Branch accumulates one static branch's direction outcomes.
type Branch struct {
	// Execs counts measured conditional executions at this PC; Taken
	// counts the taken ones (direction bias).
	Execs, Taken uint64
	// Misp counts mispredictions.
	Misp uint64
}

// MispRate returns Misp/Execs.
func (b *Branch) MispRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Misp) / float64(b.Execs)
}

// Collector is the bounded-memory per-branch accountant. It is not safe
// for concurrent use: every pipeline engine feeds it from the single
// goroutine that resolves direction outcomes in trace order (the scalar
// loop, the batched Phase A walk, the windowed leader).
type Collector struct {
	branches map[uint64]*Branch
	capacity int
	// Overflow aggregates observations of PCs that arrived after the
	// capacity filled; OverflowPCs counts how many distinct PCs were
	// folded in (an upper bound — overflowed PCs are not deduplicated).
	Overflow    Branch
	OverflowPCs uint64
	// Totals over every observation.
	CondExecs, CondMisp uint64
}

// NewCollector returns a collector bounded at capacity distinct PCs
// (DefaultCapacity when <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{
		branches: make(map[uint64]*Branch),
		capacity: capacity,
	}
}

// Capacity returns the configured bound.
func (c *Collector) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Len returns the number of exactly-tracked branch PCs.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.branches)
}

// Observe records one measured conditional execution. A nil receiver is
// a no-op; the call never allocates once the branch's entry exists.
func (c *Collector) Observe(pc uint64, taken, misp bool) {
	if c == nil {
		return
	}
	c.CondExecs++
	b := c.branches[pc]
	if b == nil {
		if len(c.branches) >= c.capacity {
			c.OverflowPCs++
			b = &c.Overflow
		} else {
			b = &Branch{}
			c.branches[pc] = b
		}
	}
	b.Execs++
	if taken {
		b.Taken++
	}
	if misp {
		b.Misp++
		c.CondMisp++
	}
}

// Lookup returns the exact counts for pc, if tracked.
func (c *Collector) Lookup(pc uint64) (Branch, bool) {
	if c == nil {
		return Branch{}, false
	}
	b, ok := c.branches[pc]
	if !ok {
		return Branch{}, false
	}
	return *b, true
}

// Merge folds other into c. The operation is commutative up to the
// receiver: merging a into b and b into a produce identical accounting
// (locked by FuzzMergeCommutes) because the combined map is pruned — if
// it exceeds c's capacity — by a deterministic total order on
// (mispredicts, executions, PC), not by arrival order. other is left
// unchanged.
func (c *Collector) Merge(other *Collector) {
	if c == nil || other == nil {
		return
	}
	c.CondExecs += other.CondExecs
	c.CondMisp += other.CondMisp
	c.Overflow.Execs += other.Overflow.Execs
	c.Overflow.Taken += other.Overflow.Taken
	c.Overflow.Misp += other.Overflow.Misp
	c.OverflowPCs += other.OverflowPCs
	for pc, ob := range other.branches {
		b := c.branches[pc]
		if b == nil {
			b = &Branch{}
			c.branches[pc] = b
		}
		b.Execs += ob.Execs
		b.Taken += ob.Taken
		b.Misp += ob.Misp
	}
	c.prune()
}

// prune enforces the capacity after a merge: the smallest entries by
// (Misp, Execs, descending PC) fold into the overflow bucket until the
// map fits. Observation never calls prune — the drop-new policy keeps
// streaming deterministic — so this only runs on explicit merges.
func (c *Collector) prune() {
	if len(c.branches) <= c.capacity {
		return
	}
	rows := c.Ranked()
	for _, r := range rows[c.capacity:] {
		b := c.branches[r.PC]
		c.Overflow.Execs += b.Execs
		c.Overflow.Taken += b.Taken
		c.Overflow.Misp += b.Misp
		c.OverflowPCs++
		delete(c.branches, r.PC)
	}
}

// Row is one ranked attribution entry.
type Row struct {
	PC uint64
	Branch
}

// Ranked returns every tracked branch ordered by the attribution rank:
// mispredictions descending, then executions descending, then PC
// ascending. The total order makes every rendering deterministic.
func (c *Collector) Ranked() []Row {
	if c == nil {
		return nil
	}
	rows := make([]Row, 0, len(c.branches))
	for pc, b := range c.branches {
		rows = append(rows, Row{PC: pc, Branch: *b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].less(&rows[j]) })
	return rows
}

// less is the attribution total order.
func (r *Row) less(o *Row) bool {
	if r.Misp != o.Misp {
		return r.Misp > o.Misp
	}
	if r.Execs != o.Execs {
		return r.Execs > o.Execs
	}
	return r.PC < o.PC
}

// TopK returns the k highest-ranked branches (all of them when k <= 0
// or k exceeds the tracked count).
func (c *Collector) TopK(k int) []Row {
	rows := c.Ranked()
	if k > 0 && k < len(rows) {
		rows = rows[:k]
	}
	return rows
}
