package attrib

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Observe(0x40, true, true) // must not panic
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Fatalf("nil collector reports state: len=%d cap=%d", c.Len(), c.Capacity())
	}
	if _, ok := c.Lookup(0x40); ok {
		t.Fatal("nil collector Lookup returned ok")
	}
	if got := c.Ranked(); got != nil {
		t.Fatalf("nil collector Ranked = %v", got)
	}
	c.Merge(NewCollector(4)) // no-op both ways
	NewCollector(4).Merge(c)
}

func TestObserveCounts(t *testing.T) {
	c := NewCollector(0)
	if c.Capacity() != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", c.Capacity(), DefaultCapacity)
	}
	c.Observe(0x10, true, true)
	c.Observe(0x10, true, false)
	c.Observe(0x10, false, true)
	c.Observe(0x20, false, false)

	if c.CondExecs != 4 || c.CondMisp != 2 {
		t.Fatalf("totals = %d execs %d misp, want 4/2", c.CondExecs, c.CondMisp)
	}
	b, ok := c.Lookup(0x10)
	if !ok || b.Execs != 3 || b.Taken != 2 || b.Misp != 2 {
		t.Fatalf("0x10 = %+v ok=%v, want {3 2 2} true", b, ok)
	}
	if got := b.MispRate(); got != 2.0/3.0 {
		t.Fatalf("MispRate = %v", got)
	}
	if (&Branch{}).MispRate() != 0 {
		t.Fatal("empty MispRate != 0")
	}
}

func TestOverflowDropNew(t *testing.T) {
	c := NewCollector(2)
	c.Observe(0x10, true, true)
	c.Observe(0x20, true, false)
	c.Observe(0x30, false, true) // over capacity: folds into overflow
	c.Observe(0x30, true, true)
	c.Observe(0x10, true, false) // existing PC still tracked exactly

	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup(0x30); ok {
		t.Fatal("overflowed PC tracked exactly")
	}
	if c.Overflow.Execs != 2 || c.Overflow.Taken != 1 || c.Overflow.Misp != 2 {
		t.Fatalf("overflow = %+v", c.Overflow)
	}
	if c.OverflowPCs != 2 {
		t.Fatalf("overflow PCs = %d, want 2 (not deduplicated)", c.OverflowPCs)
	}
	// Totals still see everything.
	if c.CondExecs != 5 || c.CondMisp != 3 {
		t.Fatalf("totals = %d/%d, want 5/3", c.CondExecs, c.CondMisp)
	}
}

func TestRankedOrder(t *testing.T) {
	c := NewCollector(0)
	// 0x30: 2 misp; 0x10 and 0x20: 1 misp each, 0x20 more execs.
	c.Observe(0x30, true, true)
	c.Observe(0x30, true, true)
	c.Observe(0x10, true, true)
	c.Observe(0x20, true, true)
	c.Observe(0x20, false, false)
	c.Observe(0x40, false, false) // 0 misp, sorts last

	want := []uint64{0x30, 0x20, 0x10, 0x40}
	rows := c.Ranked()
	if len(rows) != len(want) {
		t.Fatalf("ranked %d rows, want %d", len(rows), len(want))
	}
	for i, pc := range want {
		if rows[i].PC != pc {
			t.Fatalf("rank %d = %#x, want %#x (rows %+v)", i, rows[i].PC, pc, rows)
		}
	}
	if top := c.TopK(2); len(top) != 2 || top[0].PC != 0x30 || top[1].PC != 0x20 {
		t.Fatalf("TopK(2) = %+v", top)
	}
	if got := c.TopK(0); len(got) != 4 {
		t.Fatalf("TopK(0) = %d rows, want all", len(got))
	}
}

func TestMergeSumsAndPrunes(t *testing.T) {
	a := NewCollector(2)
	b := NewCollector(2)
	a.Observe(0x10, true, true)
	a.Observe(0x20, true, false)
	b.Observe(0x10, false, true)
	b.Observe(0x30, true, true)
	b.Observe(0x30, true, true)

	a.Merge(b)
	if a.CondExecs != 5 || a.CondMisp != 4 {
		t.Fatalf("merged totals = %d/%d", a.CondExecs, a.CondMisp)
	}
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want capacity 2", a.Len())
	}
	// 0x30 (2 misp) and 0x10 (2 misp, merged) outrank 0x20 (0 misp),
	// which must have been pruned into overflow.
	if _, ok := a.Lookup(0x20); ok {
		t.Fatal("lowest-ranked entry survived prune")
	}
	if got, _ := a.Lookup(0x10); got.Misp != 2 || got.Execs != 2 {
		t.Fatalf("merged 0x10 = %+v", got)
	}
	if a.Overflow.Execs != 1 || a.OverflowPCs != 1 {
		t.Fatalf("overflow after prune = %+v pcs=%d", a.Overflow, a.OverflowPCs)
	}
	// b is unchanged.
	if b.CondExecs != 3 || b.Len() != 2 {
		t.Fatalf("merge mutated source: %d execs len %d", b.CondExecs, b.Len())
	}
}

func buildReport(t *testing.T) *Report {
	t.Helper()
	base := NewCollector(0)
	whisper := NewCollector(0)
	// 0x100: hot, hinted, improved. 0x200: unhinted. 0x300: hinted, dead.
	for i := 0; i < 10; i++ {
		base.Observe(0x100, i%2 == 0, i < 8)
		whisper.Observe(0x100, i%2 == 0, i < 2)
	}
	for i := 0; i < 6; i++ {
		base.Observe(0x200, true, i < 3)
		whisper.Observe(0x200, true, i < 3)
	}
	return Build(Inputs{
		Workload:      "unit",
		Fingerprint:   "deadbeef",
		Records:       16,
		Instrs:        1600,
		WarmupRecords: 4,
		BaselineName:  "tage64",
		WhisperName:   "whisper",
		Base:          base,
		Whisper:       whisper,
		HintedPCs:     []uint64{0x100, 0x300},
		Trained:       3,
		Placed:        2,
		Dropped:       1,
		Classes:       map[uint64]string{0x100: "capacity"},
		TopN:          10,
	})
}

func TestBuildReport(t *testing.T) {
	r := buildReport(t)
	if r.Schema != ReportSchema || r.Workload != "unit" {
		t.Fatalf("header = %+v", r)
	}
	if r.Baseline.CondMisp != 11 || r.Whisper.CondMisp != 5 {
		t.Fatalf("summaries = %+v / %+v", r.Baseline, r.Whisper)
	}
	if r.Baseline.MPKI != 6.875 {
		t.Fatalf("baseline MPKI = %v", r.Baseline.MPKI)
	}
	if len(r.Branches) != 2 || r.Branches[0].PC != "0x00000100" {
		t.Fatalf("branches = %+v", r.Branches)
	}
	b0 := r.Branches[0]
	if b0.BaseMisp != 8 || b0.WhisperMisp != 2 || !b0.Hinted || b0.Class != "capacity" {
		t.Fatalf("top branch = %+v", b0)
	}
	if r.Branches[1].Hinted || r.Branches[1].Class != "" {
		t.Fatalf("second branch = %+v", r.Branches[1])
	}
	if r.TopShare != 100 {
		t.Fatalf("top share = %v", r.TopShare)
	}

	hs := r.HintStats
	if hs.Trained != 3 || hs.Placed != 2 || hs.Dropped != 1 {
		t.Fatalf("hint program = %+v", hs)
	}
	if hs.CoveredPCs != 2 || hs.LivePCs != 1 || hs.DeadPCs != 1 {
		t.Fatalf("coverage = %+v", hs)
	}
	if hs.Corrected != 6 || hs.Regressed != 0 || hs.BaseMispCovered != 8 {
		t.Fatalf("effectiveness = %+v", hs)
	}
	if len(hs.Hints) != 2 || hs.Hints[0].PC != "0x00000100" || !hs.Hints[1].Dead {
		t.Fatalf("scoreboard = %+v", hs.Hints)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := buildReport(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("report JSON invalid")
	}
	got, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("decode→re-encode not byte-identical:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestDecodeReportErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad json", "{"},
		{"future schema", `{"schema": 99, "workload": "x"}`},
		{"zero schema", `{"workload": "x"}`},
		{"no workload", `{"schema": 1}`},
	}
	for _, tc := range cases {
		if _, err := DecodeReport([]byte(tc.in)); err == nil {
			t.Errorf("%s: DecodeReport accepted %q", tc.name, tc.in)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := buildReport(t)
	var buf bytes.Buffer
	r.SummaryLines(&buf)
	out := buf.String()
	for _, want := range []string{
		"workload unit: 16 records, 1600 instructions (4 warm-up records)",
		"trace fingerprint deadbeef",
		"MPKI 6.875",
		"reduction 54.5%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	bt := r.BranchTable().String()
	for _, want := range []string{"0x00000100", "capacity", "yes"} {
		if !strings.Contains(bt, want) {
			t.Errorf("branch table missing %q:\n%s", want, bt)
		}
	}
	ht := r.HintTable().String()
	for _, want := range []string{"0x00000100", "live", "dead", "coverage"} {
		if !strings.Contains(ht, want) {
			t.Errorf("hint table missing %q:\n%s", want, ht)
		}
	}
}
