package attrib

import (
	"reflect"
	"testing"
)

// replay feeds the fuzz-derived observation stream into a collector,
// splitting the byte string into (pc, taken, misp) triples.
func replay(c *Collector, data []byte) {
	for i := 0; i+2 < len(data); i += 3 {
		pc := uint64(data[i]) // small PC space forces collisions + overflow
		c.Observe(pc, data[i+1]&1 == 1, data[i+2]&1 == 1)
	}
}

// FuzzMergeCommutes locks the two structural properties the pipeline
// relies on: bounded accounting never panics whatever the stream, and
// Merge is commutative — merging a into b or b into a yields identical
// ranked accounting, totals, and overflow, regardless of capacity
// pressure. Without this, windowed runs could not fold per-shard
// collectors in any order.
func FuzzMergeCommutes(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(4))
	f.Add([]byte{1, 1, 1, 2, 0, 1, 3, 1, 0}, []byte{1, 0, 1}, uint8(2))
	f.Add([]byte{9, 1, 1, 9, 1, 1, 8, 0, 1, 7, 1, 0, 6, 1, 1}, []byte{5, 1, 1, 4, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, sa, sb []byte, capByte uint8) {
		capacity := int(capByte%8) + 1 // tiny capacities exercise overflow + prune

		build := func(stream []byte) *Collector {
			c := NewCollector(capacity)
			replay(c, stream)
			return c
		}

		ab := build(sa)
		ab.Merge(build(sb))
		ba := build(sb)
		ba.Merge(build(sa))

		if ab.CondExecs != ba.CondExecs || ab.CondMisp != ba.CondMisp {
			t.Fatalf("totals differ: %d/%d vs %d/%d", ab.CondExecs, ab.CondMisp, ba.CondExecs, ba.CondMisp)
		}
		if ab.Overflow != ba.Overflow || ab.OverflowPCs != ba.OverflowPCs {
			t.Fatalf("overflow differs: %+v/%d vs %+v/%d", ab.Overflow, ab.OverflowPCs, ba.Overflow, ba.OverflowPCs)
		}
		ra, rb := ab.Ranked(), ba.Ranked()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("ranked accounting differs:\n%+v\nvs\n%+v", ra, rb)
		}
		if ab.Len() > capacity {
			t.Fatalf("merge left %d entries, capacity %d", ab.Len(), capacity)
		}

		// Conservation: exact entries + overflow account for every
		// observation.
		var execs, misp uint64
		for _, r := range ra {
			execs += r.Execs
			misp += r.Misp
		}
		execs += ab.Overflow.Execs
		misp += ab.Overflow.Misp
		if execs != ab.CondExecs || misp != ab.CondMisp {
			t.Fatalf("conservation broken: entries+overflow %d/%d, totals %d/%d",
				execs, misp, ab.CondExecs, ab.CondMisp)
		}
	})
}
