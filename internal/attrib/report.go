package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/whisper-sim/whisper/internal/stats"
)

// ReportSchema versions the canonical attribution JSON; readers reject
// documents written by a newer tool.
const ReportSchema = 1

// RunSummary describes one measured run of the evaluation window.
type RunSummary struct {
	// Predictor names the measured configuration.
	Predictor string `json:"predictor"`
	// CondExecs and CondMisp are the window's conditional direction
	// counts; MPKI is mispredictions per kilo-instruction.
	CondExecs uint64  `json:"cond_execs"`
	CondMisp  uint64  `json:"cond_misp"`
	MPKI      float64 `json:"mpki"`
}

// BranchRow is one ranked entry of the per-branch attribution table.
type BranchRow struct {
	// PC is the static branch address, rendered in hex for stability
	// across JSON readers (uint64 does not survive float64 decoding).
	PC string `json:"pc"`
	// Execs and Taken describe the branch's measured executions.
	Execs uint64 `json:"execs"`
	Taken uint64 `json:"taken"`
	// BaseMisp and WhisperMisp are the branch's mispredictions under
	// the baseline and the hinted binary.
	BaseMisp    uint64 `json:"base_misp"`
	WhisperMisp uint64 `json:"whisper_misp"`
	// BaseMPKI is the branch's contribution to the baseline MPKI;
	// SharePct its share of all baseline mispredictions.
	BaseMPKI float64 `json:"base_mpki"`
	SharePct float64 `json:"share_pct"`
	// Class is the dominant misprediction class of internal/classify
	// ("capacity", "conflict", "data_dependent", "compulsory"), empty
	// when the branch was not classified.
	Class string `json:"class,omitempty"`
	// Hinted reports whether a placed hint covers this branch.
	Hinted bool `json:"hinted"`
}

// HintRow is one entry of the per-hint effectiveness scoreboard.
type HintRow struct {
	// PC is the hinted branch address.
	PC string `json:"pc"`
	// Execs counts the branch's measured executions; Dead marks hints
	// whose branch never executed in the window.
	Execs uint64 `json:"execs"`
	Dead  bool   `json:"dead"`
	// BaseMisp and WhisperMisp are the branch's mispredictions under
	// each binary; Corrected is base minus whisper (negative when the
	// hint made the branch worse).
	BaseMisp    uint64 `json:"base_misp"`
	WhisperMisp uint64 `json:"whisper_misp"`
	Corrected   int64  `json:"corrected"`
}

// HintSummary aggregates the hint program's run-time effectiveness.
type HintSummary struct {
	// Trained, Placed and Dropped describe the offline program (Dropped
	// hints found no host within the 12-bit pointer reach).
	Trained int `json:"trained"`
	Placed  int `json:"placed"`
	Dropped int `json:"dropped"`
	// CoveredPCs counts distinct hinted branch PCs; LivePCs those that
	// executed in the window; DeadPCs the rest (dead weight).
	CoveredPCs int `json:"covered_pcs"`
	LivePCs    int `json:"live_pcs"`
	DeadPCs    int `json:"dead_pcs"`
	// Corrected sums per-branch misprediction reductions at hinted PCs;
	// Regressed sums the increases (hints that hurt).
	Corrected uint64 `json:"corrected"`
	Regressed uint64 `json:"regressed"`
	// BaseMispCovered is the baseline misprediction mass at hinted PCs;
	// CoveragePct is its share of all baseline mispredictions — how
	// much of the MPKI the hint program even aims at.
	BaseMispCovered uint64  `json:"base_misp_covered"`
	CoveragePct     float64 `json:"coverage_pct"`
	// Hints is the per-hint scoreboard, ranked by corrected
	// mispredictions descending (then base mispredictions, then PC).
	Hints []HintRow `json:"hints"`
}

// Report is the canonical attribution document for one workload: the
// deterministic JSON the report CLIs emit and the ops surface a hint
// server would serve per tenant.
type Report struct {
	Schema int `json:"schema"`
	// Workload names the evaluated window ("mysql", "trace:foo.wspt").
	Workload string `json:"workload"`
	// Fingerprint is the SHA-256 of the evaluated record window in the
	// canonical binary trace encoding (see traceio.Fingerprint).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Records/Instrs/WarmupRecords describe the measured window.
	Records       uint64 `json:"records"`
	Instrs        uint64 `json:"instrs"`
	WarmupRecords uint64 `json:"warmup_records"`
	// Baseline and Whisper summarize the two runs; ReductionPct is the
	// headline misprediction reduction.
	Baseline     RunSummary `json:"baseline"`
	Whisper      RunSummary `json:"whisper"`
	ReductionPct float64    `json:"reduction_pct"`
	// TrackedBranches counts exactly-attributed static branches;
	// OverflowPCs the observations folded into the overflow bucket.
	TrackedBranches int    `json:"tracked_branches"`
	OverflowPCs     uint64 `json:"overflow_pcs,omitempty"`
	// TopShare is the cumulative share of baseline mispredictions the
	// listed Branches account for — the paper's "a small set of
	// branches dominates" claim as a number.
	TopShare float64 `json:"top_share_pct"`
	// Branches is the ranked top-N attribution table.
	Branches []BranchRow `json:"branches"`
	// HintStats is the hint program scoreboard.
	HintStats HintSummary `json:"hint_stats"`
}

// Inputs carries everything Build folds into a Report.
type Inputs struct {
	Workload    string
	Fingerprint string
	// Records/Instrs/WarmupRecords describe the measured window (from
	// the baseline pipeline.Result).
	Records, Instrs, WarmupRecords uint64
	// BaselineName and WhisperName label the two runs.
	BaselineName, WhisperName string
	// Base and Whisper are the two runs' collectors.
	Base, Whisper *Collector
	// HintedPCs are the branch PCs covered by placed hints; Trained,
	// Placed and Dropped describe the offline hint program.
	HintedPCs                []uint64
	Trained, Placed, Dropped int
	// Classes maps branch PCs to their dominant misprediction class
	// label (internal/classify); may be nil.
	Classes map[uint64]string
	// TopN bounds the branch table (default 20); TopHints bounds the
	// hint scoreboard (default 20). Negative means unbounded.
	TopN, TopHints int
}

// round4 canonicalizes derived floats to 4 decimals so the JSON and the
// text tables render identically everywhere.
func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }

// mpki returns mispredictions per kilo-instruction.
func mpki(misp, instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return round4(float64(misp) / float64(instrs) * 1000)
}

// hexPC renders a branch PC the way the report tables do.
func hexPC(pc uint64) string { return fmt.Sprintf("0x%08x", pc) }

// Build assembles the canonical report from two attribution collectors
// and the hint program. Every derived value is rounded to 4 decimals,
// every list deterministically ordered, so equal inputs produce
// byte-identical documents.
func Build(in Inputs) *Report {
	if in.TopN == 0 {
		in.TopN = 20
	}
	if in.TopHints == 0 {
		in.TopHints = 20
	}
	r := &Report{
		Schema:        ReportSchema,
		Workload:      in.Workload,
		Fingerprint:   in.Fingerprint,
		Records:       in.Records,
		Instrs:        in.Instrs,
		WarmupRecords: in.WarmupRecords,
		Baseline: RunSummary{
			Predictor: in.BaselineName,
			CondExecs: in.Base.CondExecs,
			CondMisp:  in.Base.CondMisp,
			MPKI:      mpki(in.Base.CondMisp, in.Instrs),
		},
		Whisper: RunSummary{
			Predictor: in.WhisperName,
			CondExecs: in.Whisper.CondExecs,
			CondMisp:  in.Whisper.CondMisp,
			MPKI:      mpki(in.Whisper.CondMisp, in.Instrs),
		},
		TrackedBranches: in.Base.Len(),
		OverflowPCs:     in.Base.OverflowPCs,
	}
	if in.Base.CondMisp > 0 {
		r.ReductionPct = round4((1 - float64(in.Whisper.CondMisp)/float64(in.Base.CondMisp)) * 100)
	}

	hinted := make(map[uint64]bool, len(in.HintedPCs))
	for _, pc := range in.HintedPCs {
		hinted[pc] = true
	}

	// Branch table: ranked by the baseline collector's total order.
	top := in.Base.TopK(in.TopN)
	var topMisp uint64
	for _, row := range top {
		wb, _ := in.Whisper.Lookup(row.PC)
		br := BranchRow{
			PC:          hexPC(row.PC),
			Execs:       row.Execs,
			Taken:       row.Taken,
			BaseMisp:    row.Misp,
			WhisperMisp: wb.Misp,
			BaseMPKI:    mpki(row.Misp, in.Instrs),
			Hinted:      hinted[row.PC],
		}
		if in.Base.CondMisp > 0 {
			br.SharePct = round4(float64(row.Misp) / float64(in.Base.CondMisp) * 100)
		}
		if in.Classes != nil {
			br.Class = in.Classes[row.PC]
		}
		topMisp += row.Misp
		r.Branches = append(r.Branches, br)
	}
	if in.Base.CondMisp > 0 {
		r.TopShare = round4(float64(topMisp) / float64(in.Base.CondMisp) * 100)
	}

	// Hint scoreboard: one row per hinted PC, ranked by corrected
	// mispredictions.
	hs := HintSummary{
		Trained:    in.Trained,
		Placed:     in.Placed,
		Dropped:    in.Dropped,
		CoveredPCs: len(hinted),
	}
	rows := make([]HintRow, 0, len(hinted))
	pcs := make([]uint64, 0, len(hinted))
	for pc := range hinted {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		bb, _ := in.Base.Lookup(pc)
		wb, _ := in.Whisper.Lookup(pc)
		row := HintRow{
			PC:          hexPC(pc),
			Execs:       wb.Execs,
			Dead:        wb.Execs == 0,
			BaseMisp:    bb.Misp,
			WhisperMisp: wb.Misp,
			Corrected:   int64(bb.Misp) - int64(wb.Misp),
		}
		if row.Dead {
			hs.DeadPCs++
		} else {
			hs.LivePCs++
		}
		if row.Corrected > 0 {
			hs.Corrected += uint64(row.Corrected)
		} else {
			hs.Regressed += uint64(-row.Corrected)
		}
		hs.BaseMispCovered += bb.Misp
		rows = append(rows, row)
	}
	if in.Base.CondMisp > 0 {
		hs.CoveragePct = round4(float64(hs.BaseMispCovered) / float64(in.Base.CondMisp) * 100)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		if a.Corrected != b.Corrected {
			return a.Corrected > b.Corrected
		}
		if a.BaseMisp != b.BaseMisp {
			return a.BaseMisp > b.BaseMisp
		}
		return a.PC < b.PC
	})
	if in.TopHints > 0 && in.TopHints < len(rows) {
		rows = rows[:in.TopHints]
	}
	hs.Hints = rows
	r.HintStats = hs
	return r
}

// WriteJSON emits the canonical indented JSON document. Field order is
// the struct order, floats are pre-rounded, lists pre-sorted: equal
// reports are byte-identical.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteJSONList emits several canonical reports as one indented JSON
// array — the multi-workload document cmd/experiments -attrib-json
// writes. The same canonicalization rules apply, so equal report lists
// are byte-identical.
func WriteJSONList(w io.Writer, reports []*Report) error {
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Map flattens the report to a generic map — the shape the run
// journal's attrib lines carry (telemetry.Journal.WriteAttrib).
func (r *Report) Map() map[string]any {
	data, err := json.Marshal(r)
	if err != nil {
		return map[string]any{}
	}
	var m map[string]any
	if json.Unmarshal(data, &m) != nil {
		return map[string]any{}
	}
	return m
}

// DecodeReport parses and validates a canonical report document.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("attrib: %w", err)
	}
	if r.Schema <= 0 || r.Schema > ReportSchema {
		return nil, fmt.Errorf("attrib: schema %d, reader supports <= %d", r.Schema, ReportSchema)
	}
	if r.Workload == "" {
		return nil, fmt.Errorf("attrib: report without workload")
	}
	return &r, nil
}

// BranchTable renders the ranked attribution table.
func (r *Report) BranchTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Attribution: top %d branches by baseline mispredictions (%s)", len(r.Branches), r.Workload),
		"branch", "execs", "taken%", "base misp", "whisper", "bMPKI", "share%", "class", "hint")
	for i := range r.Branches {
		b := &r.Branches[i]
		takenPct := 0.0
		if b.Execs > 0 {
			takenPct = float64(b.Taken) / float64(b.Execs) * 100
		}
		hint := "-"
		if b.Hinted {
			hint = "yes"
		}
		class := b.Class
		if class == "" {
			class = "-"
		}
		t.AddRow(b.PC,
			fmt.Sprintf("%d", b.Execs),
			stats.FormatFloat(takenPct, 1),
			fmt.Sprintf("%d", b.BaseMisp),
			fmt.Sprintf("%d", b.WhisperMisp),
			stats.FormatFloat(b.BaseMPKI, 3),
			stats.FormatFloat(b.SharePct, 1),
			class, hint)
	}
	return t
}

// HintTable renders the per-hint effectiveness scoreboard.
func (r *Report) HintTable() *stats.Table {
	hs := &r.HintStats
	t := stats.NewTable(
		fmt.Sprintf("Hint scoreboard: %d placed / %d covered PCs (%d live, %d dead), coverage %s%% of baseline mispredictions",
			hs.Placed, hs.CoveredPCs, hs.LivePCs, hs.DeadPCs, stats.FormatFloat(hs.CoveragePct, 1)),
		"branch", "execs", "base misp", "whisper", "corrected", "state")
	for i := range hs.Hints {
		h := &hs.Hints[i]
		state := "live"
		switch {
		case h.Dead:
			state = "dead"
		case h.Corrected < 0:
			state = "regressed"
		case h.Corrected == 0:
			state = "neutral"
		}
		t.AddRow(h.PC,
			fmt.Sprintf("%d", h.Execs),
			fmt.Sprintf("%d", h.BaseMisp),
			fmt.Sprintf("%d", h.WhisperMisp),
			fmt.Sprintf("%d", h.Corrected),
			state)
	}
	return t
}

// SummaryLines renders the per-workload header block the report CLIs
// print above the tables.
func (r *Report) SummaryLines(w io.Writer) {
	fmt.Fprintf(w, "workload %s: %d records, %d instructions (%d warm-up records)\n",
		r.Workload, r.Records, r.Instrs, r.WarmupRecords)
	if r.Fingerprint != "" {
		fmt.Fprintf(w, "trace fingerprint %s\n", r.Fingerprint)
	}
	fmt.Fprintf(w, "baseline %s: %d/%d mispredicted, MPKI %s\n",
		r.Baseline.Predictor, r.Baseline.CondMisp, r.Baseline.CondExecs,
		stats.FormatFloat(r.Baseline.MPKI, 3))
	fmt.Fprintf(w, "whisper  %s: %d/%d mispredicted, MPKI %s (reduction %s%%)\n",
		r.Whisper.Predictor, r.Whisper.CondMisp, r.Whisper.CondExecs,
		stats.FormatFloat(r.Whisper.MPKI, 3), stats.FormatFloat(r.ReductionPct, 1))
	fmt.Fprintf(w, "attribution: %d static branches tracked; top %d account for %s%% of baseline mispredictions\n",
		r.TrackedBranches, len(r.Branches), stats.FormatFloat(r.TopShare, 1))
}
