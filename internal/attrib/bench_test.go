package attrib

import "testing"

// BenchmarkObserveDisabled pins the nil-sink contract: a pipeline run
// without attribution pays one nil check per conditional and zero
// allocations. CI's benchmark-smoke gate fails if this ever reports
// a non-zero B/op.
func BenchmarkObserveDisabled(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(uint64(i), i&1 == 0, i&3 == 0)
	}
}

// BenchmarkObserveEnabled measures the steady-state enabled path (entry
// already exists): map lookup + four counter bumps, no allocation.
func BenchmarkObserveEnabled(b *testing.B) {
	c := NewCollector(0)
	c.Observe(0x40, true, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(0x40, i&1 == 0, i&3 == 0)
	}
}
