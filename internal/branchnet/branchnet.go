// Package branchnet implements the BranchNet baseline (Zangeneh, Pruett,
// Lym, Patt — MICRO 2020): per-branch convolutional neural networks
// trained offline for hard-to-predict branches, deployed alongside a
// traditional predictor that covers everything else.
//
// The paper under reproduction evaluates three variants distinguished by
// total CNN metadata storage: 8KB, 32KB, and unlimited. The storage
// budget divides by the per-branch model size to give the number of
// covered branches (top mispredictors first) — which is precisely why
// BranchNet underperforms on data center applications: their
// mispredictions spread across thousands of branches (paper Fig 5), so a
// top-K policy covers only a sliver.
//
// Model scale note (DESIGN.md): the CNNs here are smaller than the
// original's (one conv layer + MLP head over the last 32 raw outcomes)
// to keep CPU training tractable at simulator scale; storage budgets are
// enforced against these model sizes. The qualitative behaviour the
// comparison needs — coverage limited by budget, training time orders of
// magnitude above formula search — is preserved.
package branchnet

import (
	"fmt"
	"sort"
	"time"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/nn"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// HistLen is the raw-history window each CNN sees.
const HistLen = 32

// Config tunes training.
type Config struct {
	// StorageBytes caps total CNN metadata (0 = unlimited).
	StorageBytes int
	// MaxBranches caps how many branches are trained even when storage
	// is unlimited (the tail contributes nothing but training time).
	MaxBranches int
	// SamplesPerBranch caps the training set per branch.
	SamplesPerBranch int
	// Epochs is the number of SGD passes.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Filters and Width shape the conv layer.
	Filters, Width int
	// Hidden is the MLP head width.
	Hidden int
	// Seed drives weight initialization.
	Seed uint64
	// MinAccuracyGain requires the CNN to beat the profiled predictor's
	// accuracy on held-out samples by this margin before deployment.
	MinAccuracyGain float64
}

// Variant returns the paper's named configurations.
func Variant(name string) (Config, error) {
	base := Config{
		MaxBranches:      400,
		SamplesPerBranch: 400,
		Epochs:           5,
		LearningRate:     0.04,
		Filters:          2,
		Width:            4,
		Hidden:           6,
		Seed:             0xB4A9C9E7,
		MinAccuracyGain:  0.01,
	}
	switch name {
	case "8KB":
		base.StorageBytes = 8 * 1024
	case "32KB":
		base.StorageBytes = 32 * 1024
	case "unlimited":
		base.StorageBytes = 0
	default:
		return Config{}, fmt.Errorf("branchnet: unknown variant %q", name)
	}
	return base, nil
}

// Model is a trained per-branch CNN.
type Model struct {
	PC  uint64
	Net *nn.Network
	// TrainAcc and BaselineAcc are held-out accuracy and the profiled
	// predictor's accuracy for the branch.
	TrainAcc, BaselineAcc float64
}

// TrainResult is the trained predictor state plus training cost.
type TrainResult struct {
	Models   map[uint64]*Model
	Trained  int
	Deployed int
	Duration time.Duration
	// StorageUsed is the total bytes of deployed models.
	StorageUsed int
}

// sample is one training example: the raw history window and the outcome.
type sample struct {
	hist  [HistLen]uint8
	taken bool
}

// Train fits CNNs for the profile's top mispredicting branches using the
// stream factory for sample collection. The profiled predictor's
// per-branch accuracy (from the profile) is the deployment bar.
func Train(p *profiler.Profile, mkStream func() trace.Stream, cfg Config) (*TrainResult, error) {
	if cfg.Epochs <= 0 || cfg.SamplesPerBranch <= 0 {
		return nil, fmt.Errorf("branchnet: epochs and samples must be positive")
	}
	start := time.Now()

	// Candidate branches: top mispredictors, like the original's
	// hard-to-predict branch selection.
	pcs := p.HardPCs()
	if cfg.MaxBranches > 0 && len(pcs) > cfg.MaxBranches {
		pcs = pcs[:cfg.MaxBranches]
	}
	// Probe model size to translate the storage budget into a branch
	// budget up front.
	probe := buildNet(cfg, xrand.New(cfg.Seed))
	modelBytes := probe.SizeBytes()
	if cfg.StorageBytes > 0 {
		maxModels := cfg.StorageBytes / modelBytes
		if maxModels < len(pcs) {
			pcs = pcs[:maxModels]
		}
	}
	want := make(map[uint64]bool, len(pcs))
	for _, pc := range pcs {
		want[pc] = true
	}

	// Sample collection pass: raw history windows for candidate
	// branches.
	samples := make(map[uint64][]sample, len(pcs))
	var hist bpu.History
	var rec trace.Record
	s := mkStream()
	for s.Next(&rec) {
		if rec.Kind != trace.CondBranch {
			continue
		}
		if want[rec.PC] && len(samples[rec.PC]) < cfg.SamplesPerBranch {
			var sm sample
			for i := 0; i < HistLen; i++ {
				if hist.Bit(i) {
					sm.hist[i] = 1
				}
			}
			sm.taken = rec.Taken
			samples[rec.PC] = append(samples[rec.PC], sm)
		}
		hist.Push(rec.Taken)
	}

	res := &TrainResult{Models: make(map[uint64]*Model)}
	rng := xrand.New(cfg.Seed)
	x := make([]float64, HistLen)
	for _, pc := range pcs {
		sms := samples[pc]
		if len(sms) < 32 {
			continue
		}
		res.Trained++
		// Hold out the last quarter for the deployment decision.
		cut := len(sms) * 3 / 4
		train, test := sms[:cut], sms[cut:]
		net := buildNet(cfg, rng)
		order := make([]int, len(train))
		for i := range order {
			order[i] = i
		}
		for e := 0; e < cfg.Epochs; e++ {
			rng.ShuffleInts(order)
			for _, idx := range order {
				sm := &train[idx]
				for i := 0; i < HistLen; i++ {
					x[i] = float64(sm.hist[i])
				}
				y := 0.0
				if sm.taken {
					y = 1
				}
				net.TrainStep(x, y, cfg.LearningRate)
			}
		}
		correct := 0
		for i := range test {
			sm := &test[i]
			for j := 0; j < HistLen; j++ {
				x[j] = float64(sm.hist[j])
			}
			if net.PredictTaken(x) == sm.taken {
				correct++
			}
		}
		acc := float64(correct) / float64(len(test))
		bs := p.Stats[pc]
		baseAcc := 1 - bs.MispRate()
		m := &Model{PC: pc, Net: net, TrainAcc: acc, BaselineAcc: baseAcc}
		if acc >= baseAcc+cfg.MinAccuracyGain {
			res.Models[pc] = m
			res.Deployed++
			res.StorageUsed += net.SizeBytes()
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

func buildNet(cfg Config, rng *xrand.Rand) *nn.Network {
	// Conv feature map feeds the dense head without global pooling:
	// position information matters for branch history (a branch can
	// depend on the outcome at a specific depth), which global pooling
	// would destroy. The original BranchNet likewise preserves position
	// via its segment-pooled fully-connected stage.
	conv := nn.NewConv1D(HistLen, cfg.Width, cfg.Filters, rng)
	return &nn.Network{Layers: []nn.Layer{
		conv,
		&nn.ReLU{},
		nn.NewDense(cfg.Filters*conv.Positions(), cfg.Hidden, rng),
		&nn.ReLU{},
		nn.NewDense(cfg.Hidden, 1, rng),
	}}
}

// Predictor is the hybrid runtime: CNN inference for covered branches,
// the underlying predictor otherwise.
type Predictor struct {
	under  bpu.Predictor
	models map[uint64]*Model
	hist   bpu.History
	name   string
	x      []float64

	// CNNPredictions counts predictions served by models.
	CNNPredictions uint64
}

// NewPredictor wraps under with the trained models.
func NewPredictor(under bpu.Predictor, models map[uint64]*Model, label string) *Predictor {
	if t, ok := under.(interface{ SuppressAllocation(uint64) }); ok {
		for pc := range models {
			t.SuppressAllocation(pc)
		}
	}
	return &Predictor{
		under:  under,
		models: models,
		name:   fmt.Sprintf("branchnet-%s+%s", label, under.Name()),
		x:      make([]float64, HistLen),
	}
}

// Name implements bpu.Predictor.
func (p *Predictor) Name() string { return p.name }

// Predict implements bpu.Predictor.
func (p *Predictor) Predict(pc uint64) bool {
	if m, ok := p.models[pc]; ok {
		p.CNNPredictions++
		for i := 0; i < HistLen; i++ {
			if p.hist.Bit(i) {
				p.x[i] = 1
			} else {
				p.x[i] = 0
			}
		}
		return m.Net.PredictTaken(p.x)
	}
	return p.under.Predict(pc)
}

// Update implements bpu.Predictor.
func (p *Predictor) Update(pc uint64, taken bool) {
	p.under.Update(pc, taken)
	p.hist.Push(taken)
}

// CoverageReport summarizes which fraction of profiled mispredictions the
// deployed models cover — the quantity the top-K assumption is about.
func CoverageReport(p *profiler.Profile, models map[uint64]*Model) (branches int, mispShare float64) {
	var covered, total uint64
	for pc, bs := range p.Stats {
		total += bs.Misp
		if _, ok := models[pc]; ok {
			covered += bs.Misp
		}
	}
	if total == 0 {
		return len(models), 0
	}
	return len(models), float64(covered) / float64(total)
}

// SortedModelPCs returns deployed PCs ordered by descending baseline
// mispredictions (for reports).
func SortedModelPCs(p *profiler.Profile, models map[uint64]*Model) []uint64 {
	pcs := make([]uint64, 0, len(models))
	for pc := range models {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		a, b := p.Stats[pcs[i]], p.Stats[pcs[j]]
		if a.Misp != b.Misp {
			return a.Misp > b.Misp
		}
		return pcs[i] < pcs[j]
	})
	return pcs
}
