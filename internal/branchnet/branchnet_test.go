package branchnet

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestVariantConfigs(t *testing.T) {
	small, err := Variant("8KB")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Variant("32KB")
	if err != nil {
		t.Fatal(err)
	}
	unl, err := Variant("unlimited")
	if err != nil {
		t.Fatal(err)
	}
	if small.StorageBytes >= big.StorageBytes {
		t.Fatal("8KB >= 32KB")
	}
	if unl.StorageBytes != 0 {
		t.Fatal("unlimited should have no storage bound")
	}
	if _, err := Variant("64KB"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

// patternStream emits a driver with a repeating 6-bit pattern and a target
// branch whose outcome copies the driver outcome 3 steps back — learnable
// from a 32-deep raw history window.
func patternStream(n int) trace.Stream {
	pattern := []bool{true, true, false, true, false, false}
	var past []bool
	var recs []trace.Record
	r := xrand.New(21)
	for i := 0; i < n; i++ {
		d := pattern[i%len(pattern)]
		if r.Bool(0.1) {
			d = !d
		}
		recs = append(recs, trace.Record{PC: 0x1000, Kind: trace.CondBranch, Taken: d, Instrs: 3})
		past = append(past, d)
		want := false
		if len(past) >= 3 {
			want = past[len(past)-3]
		}
		recs = append(recs, trace.Record{PC: 0x2000, Kind: trace.CondBranch, Taken: want, Instrs: 3})
		past = append(past, want)
	}
	return trace.NewSliceStream(recs)
}

func collectProfile(t *testing.T, mk func() trace.Stream, pred bpu.Predictor) *profiler.Profile {
	t.Helper()
	p, err := profiler.Collect(mk, pred, profiler.Options{
		Lengths: []int{8}, MinExecs: 8, MinMisp: 1, MinRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrainLearnsHistoryCopyBranch(t *testing.T) {
	mk := func() trace.Stream { return patternStream(3000) }
	p := collectProfile(t, mk, bpu.NewBimodal(12))
	cfg, _ := Variant("unlimited")
	res, err := Train(p, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trained == 0 {
		t.Fatal("nothing trained")
	}
	m, ok := res.Models[0x2000]
	if !ok {
		t.Fatalf("target branch not deployed (trained=%d deployed=%d)", res.Trained, res.Deployed)
	}
	if m.TrainAcc < 0.8 {
		t.Fatalf("CNN held-out accuracy %v on copy branch", m.TrainAcc)
	}
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestStorageBudgetLimitsCoverage(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	mk := func() trace.Stream { return app.Stream(0, 60000) }
	p := collectProfile(t, mk, tage.New(tage.DefaultConfig()))

	cfg8, _ := Variant("8KB")
	cfgU, _ := Variant("unlimited")
	cfg8.Epochs, cfgU.Epochs = 2, 2 // keep the test fast
	cfg8.SamplesPerBranch, cfgU.SamplesPerBranch = 200, 200
	cfgU.MaxBranches = 120

	r8, err := Train(p, mk, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := Train(p, mk, cfgU)
	if err != nil {
		t.Fatal(err)
	}
	if r8.StorageUsed > 8*1024 {
		t.Fatalf("8KB variant used %d bytes", r8.StorageUsed)
	}
	if r8.Trained >= rU.Trained {
		t.Fatalf("8KB trained %d, unlimited %d", r8.Trained, rU.Trained)
	}
	_, share8 := CoverageReport(p, r8.Models)
	_, shareU := CoverageReport(p, rU.Models)
	if share8 > shareU {
		t.Fatalf("8KB coverage %v exceeds unlimited %v", share8, shareU)
	}
	// The data-center regime: a budgeted top-K covers only a small share
	// of mispredictions (paper Fig 5b).
	if share8 > 0.5 {
		t.Fatalf("8KB misprediction coverage %v implausibly high for a DC app", share8)
	}
}

func TestPredictorHybridRouting(t *testing.T) {
	mk := func() trace.Stream { return patternStream(2500) }
	p := collectProfile(t, mk, bpu.NewBimodal(12))
	cfg, _ := Variant("unlimited")
	res, err := Train(p, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) == 0 {
		t.Skip("no models deployed")
	}
	pred := NewPredictor(tage.New(tage.DefaultConfig()), res.Models, "unlimited")
	s := mk()
	var rec trace.Record
	misp, total := 0, 0
	for s.Next(&rec) {
		if rec.Kind != trace.CondBranch {
			continue
		}
		if pred.Predict(rec.PC) != rec.Taken {
			misp++
		}
		total++
		pred.Update(rec.PC, rec.Taken)
	}
	if pred.CNNPredictions == 0 {
		t.Fatal("CNN never used")
	}
	if float64(misp)/float64(total) > 0.3 {
		t.Fatalf("hybrid misprediction rate %v", float64(misp)/float64(total))
	}
}

func TestTrainValidation(t *testing.T) {
	p := &profiler.Profile{}
	if _, err := Train(p, nil, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDeploymentBarRespected(t *testing.T) {
	// Branch profiled as easy (oracle baseline): the CNN can never beat
	// it, so nothing deploys.
	mk := func() trace.Stream { return patternStream(1500) }
	p := collectProfile(t, mk, bpu.NewBimodal(12))
	// Inflate the baseline accuracy artificially.
	for _, bs := range p.Stats {
		bs.Misp = 0
	}
	cfg, _ := Variant("unlimited")
	res, err := Train(p, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deployed != 0 {
		t.Fatalf("%d models deployed against perfect baseline", res.Deployed)
	}
}

func TestSortedModelPCs(t *testing.T) {
	p := &profiler.Profile{Stats: map[uint64]*profiler.BranchStats{
		1: {Misp: 10}, 2: {Misp: 30}, 3: {Misp: 20},
	}}
	models := map[uint64]*Model{1: {}, 2: {}, 3: {}}
	pcs := SortedModelPCs(p, models)
	if pcs[0] != 2 || pcs[1] != 3 || pcs[2] != 1 {
		t.Fatalf("order %v", pcs)
	}
}
