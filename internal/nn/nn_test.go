package nn

import (
	"math"
	"testing"

	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestDenseForwardShape(t *testing.T) {
	r := xrand.New(1)
	d := NewDense(3, 2, r)
	out := d.Forward([]float64{1, 0, -1})
	if len(out) != 2 {
		t.Fatalf("output len %d", len(out))
	}
	if d.NumParams() != 3*2+2 {
		t.Fatalf("params %d", d.NumParams())
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(3, 2, xrand.New(1)).Forward([]float64{1})
}

func TestDenseGradientNumerically(t *testing.T) {
	// Finite-difference check of dLoss/dW for a single dense layer with
	// squared loss L = 0.5*out^2 (i.e. dout = out).
	r := xrand.New(2)
	d := NewDense(3, 1, r)
	x := []float64{0.5, -1.2, 2.0}
	out := d.Forward(x)
	d.Backward([]float64{out[0]})
	analytic := append([]float64(nil), d.gw...)
	const eps = 1e-6
	for i := range d.W {
		orig := d.W[i]
		d.W[i] = orig + eps
		lp := 0.5 * d.Forward(x)[0] * d.Forward(x)[0]
		d.W[i] = orig - eps
		lm := 0.5 * d.Forward(x)[0] * d.Forward(x)[0]
		d.W[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4 {
			t.Fatalf("W[%d]: numeric %v analytic %v", i, numeric, analytic[i])
		}
	}
}

func TestConvGradientNumerically(t *testing.T) {
	r := xrand.New(3)
	c := NewConv1D(6, 3, 2, r)
	pool := NewSumPool(2, c.Positions())
	x := []float64{1, 0, 1, 1, 0, 1}
	forward := func() float64 {
		p := pool.Forward(c.Forward(x))
		return 0.5 * (p[0]*p[0] + p[1]*p[1])
	}
	p := pool.Forward(c.Forward(x))
	c.Backward(pool.Backward([]float64{p[0], p[1]}))
	analytic := append([]float64(nil), c.gw...)
	const eps = 1e-6
	for i := range c.W {
		orig := c.W[i]
		c.W[i] = orig + eps
		lp := forward()
		c.W[i] = orig - eps
		lm := forward()
		c.W[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4 {
			t.Fatalf("conv W[%d]: numeric %v analytic %v", i, numeric, analytic[i])
		}
	}
}

func TestReLU(t *testing.T) {
	var r ReLU
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("relu out %v", out)
	}
	din := r.Backward([]float64{5, 5, 5})
	if din[0] != 0 || din[2] != 5 {
		t.Fatalf("relu grad %v", din)
	}
}

func TestSumPool(t *testing.T) {
	p := NewSumPool(2, 3)
	out := p.Forward([]float64{1, 2, 3, 10, 20, 30})
	if out[0] != 6 || out[1] != 60 {
		t.Fatalf("pool out %v", out)
	}
	din := p.Backward([]float64{1, 2})
	want := []float64{1, 1, 1, 2, 2, 2}
	for i := range want {
		if din[i] != want[i] {
			t.Fatalf("pool grad %v", din)
		}
	}
}

func mlp(seed uint64, in int, hidden int) *Network {
	r := xrand.New(seed)
	return &Network{Layers: []Layer{
		NewDense(in, hidden, r),
		&ReLU{},
		NewDense(hidden, 1, r),
	}}
}

func TestMLPLearnsXOR(t *testing.T) {
	n := mlp(4, 2, 8)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 3000; epoch++ {
		for i, x := range data {
			n.TrainStep(x, labels[i], 0.1)
		}
	}
	for i, x := range data {
		if n.PredictTaken(x) != (labels[i] == 1) {
			t.Fatalf("XOR(%v) mispredicted after training", x)
		}
	}
}

func TestMLPLearnsAND(t *testing.T) {
	n := mlp(5, 2, 4)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float64{0, 0, 0, 1}
	for epoch := 0; epoch < 1500; epoch++ {
		for i, x := range data {
			n.TrainStep(x, labels[i], 0.1)
		}
	}
	for i, x := range data {
		if n.PredictTaken(x) != (labels[i] == 1) {
			t.Fatalf("AND(%v) mispredicted", x)
		}
	}
}

func TestConvNetLearnsPatternDetection(t *testing.T) {
	// Label = 1 iff the motif 1,1,0 appears anywhere in the 12-bit input:
	// exactly what a conv filter + sum pool can express.
	r := xrand.New(6)
	conv := NewConv1D(12, 3, 4, r)
	net := &Network{Layers: []Layer{
		conv,
		&ReLU{},
		NewSumPool(4, conv.Positions()),
		NewDense(4, 6, r),
		&ReLU{},
		NewDense(6, 1, r),
	}}
	gen := func(rr *xrand.Rand) ([]float64, float64) {
		x := make([]float64, 12)
		for i := range x {
			if rr.Bool(0.4) {
				x[i] = 1
			}
		}
		label := 0.0
		for p := 0; p+2 < 12; p++ {
			if x[p] == 1 && x[p+1] == 1 && x[p+2] == 0 {
				label = 1
				break
			}
		}
		return x, label
	}
	rr := xrand.New(7)
	for step := 0; step < 30000; step++ {
		x, y := gen(rr)
		net.TrainStep(x, y, 0.02)
	}
	correct, total := 0, 0
	test := xrand.New(8)
	for i := 0; i < 1000; i++ {
		x, y := gen(test)
		if net.PredictTaken(x) == (y == 1) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("conv net accuracy %v on motif detection", acc)
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	n := mlp(9, 4, 8)
	r := xrand.New(10)
	sample := func() ([]float64, float64) {
		x := make([]float64, 4)
		for i := range x {
			if r.Bool(0.5) {
				x[i] = 1
			}
		}
		y := 0.0
		if x[0] == 1 && x[2] == 0 {
			y = 1
		}
		return x, y
	}
	early, late := 0.0, 0.0
	const steps = 8000
	for i := 0; i < steps; i++ {
		x, y := sample()
		l := n.TrainStep(x, y, 0.05)
		if i < 500 {
			early += l
		}
		if i >= steps-500 {
			late += l
		}
	}
	if late >= early*0.5 {
		t.Fatalf("loss did not decrease: early %v late %v", early/500, late/500)
	}
}

func TestNetworkSizeBytes(t *testing.T) {
	n := mlp(11, 8, 4)
	want := 4 * ((8*4 + 4) + (4*1 + 1))
	if n.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", n.SizeBytes(), want)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() float64 {
		n := mlp(12, 2, 4)
		r := xrand.New(13)
		loss := 0.0
		for i := 0; i < 200; i++ {
			x := []float64{float64(i % 2), float64((i / 2) % 2)}
			y := float64(i % 2)
			loss += n.TrainStep(x, y, 0.1)
			_ = r
		}
		return loss
	}
	if run() != run() {
		t.Fatal("training not deterministic")
	}
}

func BenchmarkTrainStep(b *testing.B) {
	r := xrand.New(1)
	conv := NewConv1D(32, 4, 4, r)
	net := &Network{Layers: []Layer{
		conv, &ReLU{}, NewSumPool(4, conv.Positions()),
		NewDense(4, 8, r), &ReLU{}, NewDense(8, 1, r),
	}}
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i & 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(x, 1, 0.05)
	}
}
