// Package nn is a minimal neural-network framework sufficient to train the
// per-branch convolutional predictors of the BranchNet baseline (Zangeneh
// et al., MICRO 2020) on commodity CPUs.
//
// The framework supports exactly what BranchNet needs: 1-D valid
// convolution over the binary branch-history sequence, sum pooling, dense
// layers, ReLU, and binary cross-entropy with logits trained by plain SGD.
// It is deterministic: weight initialization and sample order derive from
// explicit xrand seeds.
package nn

import (
	"math"

	"github.com/whisper-sim/whisper/internal/xrand"
)

// Layer is a differentiable network stage. Forward and Backward must be
// called in matched pairs; Backward accumulates parameter gradients which
// Step applies and clears.
type Layer interface {
	// Forward computes the layer output for in. The returned slice is
	// owned by the layer and valid until the next Forward.
	Forward(in []float64) []float64
	// Backward consumes dLoss/dOut and returns dLoss/dIn, accumulating
	// parameter gradients.
	Backward(dout []float64) []float64
	// Step applies accumulated gradients with learning rate lr and
	// clears them.
	Step(lr float64)
	// NumParams returns the number of trainable parameters.
	NumParams() int
}

// Dense is a fully connected layer: out = W·in + b.
type Dense struct {
	In, Out int
	W       []float64 // Out x In, row-major
	B       []float64

	gw, gb []float64
	lastIn []float64
	out    []float64
	din    []float64
}

// NewDense creates a dense layer with Xavier-uniform initialization.
func NewDense(in, out int, rng *xrand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:   make([]float64, in*out),
		B:   make([]float64, out),
		gw:  make([]float64, in*out),
		gb:  make([]float64, out),
		out: make([]float64, out),
		din: make([]float64, in),
	}
	scale := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (2*rng.Float64() - 1) * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in []float64) []float64 {
	if len(in) != d.In {
		panic("nn: dense input size mismatch")
	}
	d.lastIn = in
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, v := range in {
			sum += row[i] * v
		}
		d.out[o] = sum
	}
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(dout []float64) []float64 {
	for i := range d.din {
		d.din[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := dout[o]
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i, v := range d.lastIn {
			grow[i] += g * v
			d.din[i] += g * row[i]
		}
	}
	return d.din
}

// Step implements Layer.
func (d *Dense) Step(lr float64) {
	for i := range d.W {
		d.W[i] -= lr * d.gw[i]
		d.gw[i] = 0
	}
	for i := range d.B {
		d.B[i] -= lr * d.gb[i]
		d.gb[i] = 0
	}
}

// NumParams implements Layer.
func (d *Dense) NumParams() int { return len(d.W) + len(d.B) }

// Conv1D is a single-input-channel 1-D valid convolution with F filters of
// the given width: output is filter-major, length F*(inLen-width+1).
type Conv1D struct {
	InLen, Width, Filters int
	W                     []float64 // Filters x Width
	B                     []float64

	gw, gb []float64
	lastIn []float64
	out    []float64
	din    []float64
}

// NewConv1D creates the convolution with Xavier-uniform initialization.
func NewConv1D(inLen, width, filters int, rng *xrand.Rand) *Conv1D {
	if width > inLen {
		panic("nn: conv width exceeds input length")
	}
	positions := inLen - width + 1
	c := &Conv1D{
		InLen: inLen, Width: width, Filters: filters,
		W:   make([]float64, filters*width),
		B:   make([]float64, filters),
		gw:  make([]float64, filters*width),
		gb:  make([]float64, filters),
		out: make([]float64, filters*positions),
		din: make([]float64, inLen),
	}
	scale := math.Sqrt(6.0 / float64(width+filters))
	for i := range c.W {
		c.W[i] = (2*rng.Float64() - 1) * scale
	}
	return c
}

// Positions returns the number of output positions per filter.
func (c *Conv1D) Positions() int { return c.InLen - c.Width + 1 }

// Forward implements Layer.
func (c *Conv1D) Forward(in []float64) []float64 {
	if len(in) != c.InLen {
		panic("nn: conv input size mismatch")
	}
	c.lastIn = in
	pos := c.Positions()
	for f := 0; f < c.Filters; f++ {
		w := c.W[f*c.Width : (f+1)*c.Width]
		for p := 0; p < pos; p++ {
			sum := c.B[f]
			for k := 0; k < c.Width; k++ {
				sum += w[k] * in[p+k]
			}
			c.out[f*pos+p] = sum
		}
	}
	return c.out
}

// Backward implements Layer.
func (c *Conv1D) Backward(dout []float64) []float64 {
	for i := range c.din {
		c.din[i] = 0
	}
	pos := c.Positions()
	for f := 0; f < c.Filters; f++ {
		w := c.W[f*c.Width : (f+1)*c.Width]
		gw := c.gw[f*c.Width : (f+1)*c.Width]
		for p := 0; p < pos; p++ {
			g := dout[f*pos+p]
			c.gb[f] += g
			for k := 0; k < c.Width; k++ {
				gw[k] += g * c.lastIn[p+k]
				c.din[p+k] += g * w[k]
			}
		}
	}
	return c.din
}

// Step implements Layer.
func (c *Conv1D) Step(lr float64) {
	for i := range c.W {
		c.W[i] -= lr * c.gw[i]
		c.gw[i] = 0
	}
	for i := range c.B {
		c.B[i] -= lr * c.gb[i]
		c.gb[i] = 0
	}
}

// NumParams implements Layer.
func (c *Conv1D) NumParams() int { return len(c.W) + len(c.B) }

// SumPool sums each filter's positions: input filter-major F*P, output F.
// BranchNet uses sum pooling to make the prediction position-invariant.
type SumPool struct {
	Filters, Positions int
	out                []float64
	din                []float64
}

// NewSumPool creates the pool for the given geometry.
func NewSumPool(filters, positions int) *SumPool {
	return &SumPool{
		Filters: filters, Positions: positions,
		out: make([]float64, filters),
		din: make([]float64, filters*positions),
	}
}

// Forward implements Layer.
func (s *SumPool) Forward(in []float64) []float64 {
	if len(in) != s.Filters*s.Positions {
		panic("nn: pool input size mismatch")
	}
	for f := 0; f < s.Filters; f++ {
		sum := 0.0
		for p := 0; p < s.Positions; p++ {
			sum += in[f*s.Positions+p]
		}
		s.out[f] = sum
	}
	return s.out
}

// Backward implements Layer.
func (s *SumPool) Backward(dout []float64) []float64 {
	for f := 0; f < s.Filters; f++ {
		for p := 0; p < s.Positions; p++ {
			s.din[f*s.Positions+p] = dout[f]
		}
	}
	return s.din
}

// Step implements Layer.
func (s *SumPool) Step(float64) {}

// NumParams implements Layer.
func (s *SumPool) NumParams() int { return 0 }

// ReLU is the rectifier nonlinearity.
type ReLU struct {
	out []float64
	din []float64
}

// Forward implements Layer.
func (r *ReLU) Forward(in []float64) []float64 {
	if cap(r.out) < len(in) {
		r.out = make([]float64, len(in))
		r.din = make([]float64, len(in))
	}
	r.out = r.out[:len(in)]
	r.din = r.din[:len(in)]
	for i, v := range in {
		if v > 0 {
			r.out[i] = v
		} else {
			r.out[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout []float64) []float64 {
	for i, v := range r.out {
		if v > 0 {
			r.din[i] = dout[i]
		} else {
			r.din[i] = 0
		}
	}
	return r.din
}

// Step implements Layer.
func (r *ReLU) Step(float64) {}

// NumParams implements Layer.
func (r *ReLU) NumParams() int { return 0 }

// Network is a sequential stack of layers ending in a single logit.
type Network struct {
	Layers []Layer
}

// Forward returns the network's raw logit for x.
func (n *Network) Forward(x []float64) float64 {
	cur := x
	for _, l := range n.Layers {
		cur = l.Forward(cur)
	}
	if len(cur) != 1 {
		panic("nn: network must end in a single logit")
	}
	return cur[0]
}

// PredictTaken thresholds the logit at zero (sigmoid 0.5).
func (n *Network) PredictTaken(x []float64) bool { return n.Forward(x) >= 0 }

// TrainStep runs one SGD step on (x, y) with binary cross-entropy on the
// logit and returns the loss. y must be 0 or 1.
func (n *Network) TrainStep(x []float64, y, lr float64) float64 {
	logit := n.Forward(x)
	// Numerically stable BCE-with-logits.
	p := sigmoid(logit)
	loss := -y*logSafe(p) - (1-y)*logSafe(1-p)
	grad := []float64{p - y}
	cur := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		cur = n.Layers[i].Backward(cur)
	}
	for _, l := range n.Layers {
		l.Step(lr)
	}
	return loss
}

// NumParams returns the trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumParams()
	}
	return total
}

// SizeBytes returns the storage footprint at 32-bit weights, the unit the
// BranchNet storage budgets are expressed in.
func (n *Network) SizeBytes() int { return 4 * n.NumParams() }

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

func logSafe(p float64) float64 {
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}
