// Package store defines the versioned on-disk artifact format that makes
// Whisper's pipeline stages durable (paper §IV, Fig 10): a profile
// collected in production can be written once, trained offline many
// times, and the trained hint bundle shipped to the link step — the
// separation PGO systems need between profiling, training, and serving.
//
// Layout:
//
//	magic "WSPA" | version u16 | section count u16
//	per section: tag [4]byte | payload length u32 | payload | CRC32 u32
//
// Sections appear in a fixed order — META (always), then PROF and/or
// HINT — and every integer outside the fixed-width header fields is a
// canonical uvarint (minimal length enforced on decode). That, plus
// strictly-ascending PC deltas, maximal zero runs in the histogram RLE,
// and 0/1 bool bytes, makes the encoding a bijection on its valid
// range: any bytes that decode successfully re-encode byte-identically,
// which is what the fuzz harness pins down.
//
// Readers reject damage with typed errors (ErrBadMagic, ErrVersion,
// ErrTruncated, ErrCorrupt) so callers can fall back to re-profiling or
// retraining instead of consuming garbage.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/profiler"
)

// FormatVersion is the current format revision. Files written by a
// newer revision are rejected with ErrVersion; callers treat that as a
// cache miss and regenerate the artifact.
const FormatVersion = 1

var fileMagic = [4]byte{'W', 'S', 'P', 'A'}

// Section tags, in their mandatory file order.
var (
	secMeta = [4]byte{'M', 'E', 'T', 'A'}
	secProf = [4]byte{'P', 'R', 'O', 'F'}
	secHint = [4]byte{'H', 'I', 'N', 'T'}
)

// Typed decode failures. Every reader error wraps exactly one of these
// (or an underlying I/O error), so callers can errors.Is-dispatch.
var (
	// ErrBadMagic means the input is not a store artifact at all.
	ErrBadMagic = errors.New("store: bad magic")
	// ErrVersion means the artifact was written by a newer format
	// revision than this reader understands.
	ErrVersion = errors.New("store: unsupported format version")
	// ErrTruncated means the input ended before the declared content.
	ErrTruncated = errors.New("store: truncated artifact")
	// ErrCorrupt means a checksum or structural invariant failed.
	ErrCorrupt = errors.New("store: corrupt artifact")
)

// Encoding limits. They bound hostile allocations, not real profiles:
// the defaults use 16 lengths and 4000 hard branches.
const (
	maxSectionBytes = 1 << 30
	maxLengths      = 64
	maxLengthValue  = 1 << 20
)

// Meta identifies the window an artifact was collected over, plus the
// cache key it was stored under (verified on load so a hash-shortened
// filename collision can never alias two different configurations).
type Meta struct {
	// App and Input name the profiled workload window.
	App   string
	Input int
	// Records is the window length in trace records.
	Records int
	// Key is the full cache key for cache-managed artifacts ("" for
	// artifacts written directly by the CLI).
	Key string
}

// Artifact is the unit of storage: window metadata plus a profile
// snapshot and/or a trained hint bundle.
type Artifact struct {
	Meta Meta
	// Profile is the production profile snapshot (nil if absent).
	Profile *profiler.Profile
	// Train is the trained hint bundle (nil if absent).
	Train *core.TrainResult
	// WindowInstrs is the profiled window's instruction count, carried
	// with the hint bundle so `whisper apply` can compute dynamic
	// overhead without the full profile. Meaningful only when Train is
	// set.
	WindowInstrs uint64
}

// --- writing ----------------------------------------------------------

// Write streams a to w section by section.
func Write(w io.Writer, a *Artifact) error {
	type section struct {
		tag     [4]byte
		payload []byte
	}
	sections := []section{}
	meta, err := encodeMeta(&a.Meta)
	if err != nil {
		return err
	}
	sections = append(sections, section{secMeta, meta})
	if a.Profile != nil {
		p, err := encodeProfile(a.Profile)
		if err != nil {
			return err
		}
		sections = append(sections, section{secProf, p})
	}
	if a.Train != nil {
		h, err := encodeTrain(a.Train, a.WindowInstrs)
		if err != nil {
			return err
		}
		sections = append(sections, section{secHint, h})
	}

	var hdr [8]byte
	copy(hdr[:4], fileMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(sections)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.payload) > maxSectionBytes {
			return fmt.Errorf("store: %s section exceeds %d bytes", s.tag, maxSectionBytes)
		}
		var sh [8]byte
		copy(sh[:4], s.tag[:])
		binary.LittleEndian.PutUint32(sh[4:8], uint32(len(s.payload)))
		if _, err := w.Write(sh[:]); err != nil {
			return err
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(s.payload))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// Encode renders a to bytes.
func Encode(a *Artifact) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes a to path atomically (temp file + rename), so a
// crashed writer never leaves a half-written artifact under the final
// name.
func WriteFile(path string, a *Artifact) error {
	data, err := Encode(a)
	if err != nil {
		return err
	}
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i], path[i+1:]
		}
	}
	return ".", path
}

// --- reading ----------------------------------------------------------

// Read streams an artifact from r, validating magic, version, section
// order, and per-section CRCs.
func Read(r io.Reader) (*Artifact, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[:4]) != fileMagic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint16(hdr[4:6])
	if version == 0 || version > FormatVersion {
		return nil, fmt.Errorf("%w: file version %d, reader supports <= %d",
			ErrVersion, version, FormatVersion)
	}
	nsec := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if nsec < 1 || nsec > 3 {
		return nil, fmt.Errorf("%w: %d sections", ErrCorrupt, nsec)
	}

	a := &Artifact{}
	// Sections must appear in tag order; next tracks the earliest
	// position still allowed, rejecting duplicates and reorderings so
	// every valid file has exactly one encoding.
	order := [][4]byte{secMeta, secProf, secHint}
	next := 0
	for i := 0; i < nsec; i++ {
		var sh [8]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
		}
		tag := [4]byte(sh[:4])
		size := binary.LittleEndian.Uint32(sh[4:8])
		if size > maxSectionBytes {
			return nil, fmt.Errorf("%w: %s section claims %d bytes", ErrCorrupt, tag, size)
		}
		// Copy incrementally rather than pre-allocating size bytes: a
		// hostile header claiming a huge section then fails after the
		// bytes actually present, without the up-front allocation.
		var pb bytes.Buffer
		if _, err := io.CopyN(&pb, r, int64(size)); err != nil {
			return nil, fmt.Errorf("%w: %s payload: %v", ErrTruncated, tag, err)
		}
		payload := pb.Bytes()
		var crcb [4]byte
		if _, err := io.ReadFull(r, crcb[:]); err != nil {
			return nil, fmt.Errorf("%w: %s checksum: %v", ErrTruncated, tag, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
			return nil, fmt.Errorf("%w: %s checksum mismatch (%08x != %08x)", ErrCorrupt, tag, got, want)
		}

		if i == 0 && tag != secMeta {
			return nil, fmt.Errorf("%w: first section %q, want META", ErrCorrupt, tag[:])
		}
		idx := -1
		for k := next; k < len(order); k++ {
			if tag == order[k] {
				idx = k
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("%w: unexpected section %q", ErrCorrupt, tag[:])
		}
		next = idx + 1
		var err error
		switch tag {
		case secMeta:
			err = decodeMeta(payload, &a.Meta)
		case secProf:
			a.Profile, err = decodeProfile(payload)
		case secHint:
			a.Train, a.WindowInstrs, err = decodeTrain(payload)
		}
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Decode parses data as one complete artifact; trailing bytes are
// rejected, which Read (a stream API) cannot do.
func Decode(data []byte) (*Artifact, error) {
	br := bytes.NewReader(data)
	a, err := Read(br)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, br.Len())
	}
	return a, nil
}

// ReadFile reads and decodes one artifact file.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Fingerprint returns a stable hex digest of a profile's canonical
// encoding. Training is a pure function of (profile, params), so the
// fingerprint keys trained-hint cache entries — including profiles
// merged in memory that never map back to a single (app, input) window.
func Fingerprint(p *profiler.Profile) (string, error) {
	payload, err := encodeProfile(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return fmt.Sprintf("%x", sum[:]), nil
}

// --- canonical primitive codec ----------------------------------------

type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *enc) float(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	e.b = append(e.b, b[:]...)
}

func (e *enc) boolByte(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

// uvarint reads one canonical (minimal-length) varint. Payloads are
// CRC-complete before parsing, so running out of bytes here is
// structural corruption, not truncation.
func (d *dec) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		if d.off >= len(d.b) {
			return 0, fmt.Errorf("%w: varint runs past payload", ErrCorrupt)
		}
		c := d.b[d.off]
		d.off++
		if i == 9 {
			if c > 1 {
				return 0, fmt.Errorf("%w: varint overflows uint64", ErrCorrupt)
			}
			return x | uint64(c)<<s, nil
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, fmt.Errorf("%w: non-minimal varint", ErrCorrupt)
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// intval reads a canonical varint bounded by max and returns it as int.
func (d *dec) intval(max uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("%w: value %d exceeds bound %d", ErrCorrupt, v, max)
	}
	return int(v), nil
}

func (d *dec) float() (float64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: float runs past payload", ErrCorrupt)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

func (d *dec) boolByte() (bool, error) {
	if d.off >= len(d.b) {
		return false, fmt.Errorf("%w: bool runs past payload", ErrCorrupt)
	}
	c := d.b[d.off]
	d.off++
	if c > 1 {
		return false, fmt.Errorf("%w: bool byte %#x", ErrCorrupt, c)
	}
	return c == 1, nil
}

func (d *dec) byteVal() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("%w: byte runs past payload", ErrCorrupt)
	}
	c := d.b[d.off]
	d.off++
	return c, nil
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("%w: string length %d exceeds payload", ErrCorrupt, n)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *dec) done() error {
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return nil
}

// sortedKeys returns m's keys ascending; ascending PCs are what makes
// the delta encoding canonical.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pcSeq decodes the strictly-ascending PC delta sequence: the first
// value is absolute, every later one a positive delta from the previous.
type pcSeq struct {
	prev  uint64
	first bool
}

func newPCSeq() pcSeq { return pcSeq{first: true} }

func (s *pcSeq) next(d *dec) (uint64, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if s.first {
		s.first = false
		s.prev = v
		return v, nil
	}
	if v == 0 {
		return 0, fmt.Errorf("%w: zero PC delta", ErrCorrupt)
	}
	pc := s.prev + v
	if pc < s.prev {
		return 0, fmt.Errorf("%w: PC delta overflow", ErrCorrupt)
	}
	s.prev = pc
	return pc, nil
}

func (s *pcSeq) emit(e *enc, pc uint64) {
	if s.first {
		s.first = false
		e.uvarint(pc)
	} else {
		e.uvarint(pc - s.prev)
	}
	s.prev = pc
}

// hist encodes a 256-bucket histogram with maximal zero-run RLE: token
// 0 is followed by a run length; token v+1 carries a non-zero count v.
// Zero counts can only live in runs and runs cannot be adjacent, so the
// encoding of any histogram is unique.
func (e *enc) hist(h *[256]uint32) {
	for i := 0; i < 256; {
		if h[i] == 0 {
			j := i
			for j < 256 && h[j] == 0 {
				j++
			}
			e.uvarint(0)
			e.uvarint(uint64(j - i))
			i = j
		} else {
			e.uvarint(uint64(h[i]) + 1)
			i++
		}
	}
}

func (d *dec) hist(h *[256]uint32) error {
	i := 0
	afterRun := false
	for i < 256 {
		tok, err := d.uvarint()
		if err != nil {
			return err
		}
		switch {
		case tok == 0:
			if afterRun {
				return fmt.Errorf("%w: adjacent zero runs", ErrCorrupt)
			}
			run, err := d.uvarint()
			if err != nil {
				return err
			}
			if run == 0 || run > uint64(256-i) {
				return fmt.Errorf("%w: zero run %d at bucket %d", ErrCorrupt, run, i)
			}
			i += int(run)
			afterRun = true
		case tok == 1:
			return fmt.Errorf("%w: zero count outside run", ErrCorrupt)
		case tok-1 > math.MaxUint32:
			return fmt.Errorf("%w: histogram count overflows uint32", ErrCorrupt)
		default:
			h[i] = uint32(tok - 1)
			i++
			afterRun = false
		}
	}
	return nil
}

// --- META section ------------------------------------------------------

func encodeMeta(m *Meta) ([]byte, error) {
	if m.Input < 0 || m.Records < 0 {
		return nil, fmt.Errorf("store: negative meta field (input %d, records %d)", m.Input, m.Records)
	}
	e := &enc{}
	e.str(m.App)
	e.uvarint(uint64(m.Input))
	e.uvarint(uint64(m.Records))
	e.str(m.Key)
	return e.b, nil
}

func decodeMeta(payload []byte, m *Meta) error {
	d := &dec{b: payload}
	var err error
	if m.App, err = d.str(); err != nil {
		return err
	}
	if m.Input, err = d.intval(math.MaxInt64); err != nil {
		return err
	}
	if m.Records, err = d.intval(math.MaxInt64); err != nil {
		return err
	}
	if m.Key, err = d.str(); err != nil {
		return err
	}
	return d.done()
}

// --- PROF section ------------------------------------------------------

func encodeLengths(e *enc, lengths []int) error {
	if len(lengths) > maxLengths {
		return fmt.Errorf("store: %d history lengths exceeds %d", len(lengths), maxLengths)
	}
	e.uvarint(uint64(len(lengths)))
	for _, l := range lengths {
		if l <= 0 || l > maxLengthValue {
			return fmt.Errorf("store: history length %d out of range", l)
		}
		e.uvarint(uint64(l))
	}
	return nil
}

func decodeLengths(d *dec) ([]int, error) {
	n, err := d.intval(maxLengths)
	if err != nil {
		return nil, err
	}
	lengths := make([]int, n)
	for i := range lengths {
		v, err := d.intval(maxLengthValue)
		if err != nil {
			return nil, err
		}
		if v == 0 {
			return nil, fmt.Errorf("%w: zero history length", ErrCorrupt)
		}
		lengths[i] = v
	}
	return lengths, nil
}

func encodeProfile(p *profiler.Profile) ([]byte, error) {
	e := &enc{}
	if err := encodeLengths(e, p.Lengths); err != nil {
		return nil, err
	}
	e.uvarint(p.Records)
	e.uvarint(p.Instrs)
	e.uvarint(p.CondExecs)
	e.uvarint(p.Mispreds)

	e.uvarint(uint64(len(p.Stats)))
	seq := newPCSeq()
	for _, pc := range sortedKeys(p.Stats) {
		bs := p.Stats[pc]
		seq.emit(e, pc)
		e.uvarint(bs.Execs)
		e.uvarint(bs.Misp)
		e.uvarint(bs.Taken)
	}

	e.uvarint(uint64(len(p.Hard)))
	seq = newPCSeq()
	for _, pc := range sortedKeys(p.Hard) {
		hp := p.Hard[pc]
		if len(hp.T) != len(p.Lengths) || len(hp.NT) != len(p.Lengths) ||
			len(hp.VT) != len(p.Lengths) || len(hp.VNT) != len(p.Lengths) {
			return nil, fmt.Errorf("store: hard profile %#x histogram count mismatches %d lengths", pc, len(p.Lengths))
		}
		seq.emit(e, pc)
		e.uvarint(hp.Execs)
		e.uvarint(hp.Misp)
		e.uvarint(hp.MeasExecs)
		e.uvarint(hp.MispMeas)
		e.uvarint(hp.MispVal)
		for i := range p.Lengths {
			e.hist(&hp.T[i])
			e.hist(&hp.NT[i])
			e.hist(&hp.VT[i])
			e.hist(&hp.VNT[i])
		}
	}
	return e.b, nil
}

func decodeProfile(payload []byte) (*profiler.Profile, error) {
	d := &dec{b: payload}
	lengths, err := decodeLengths(d)
	if err != nil {
		return nil, err
	}
	p := &profiler.Profile{
		Lengths: lengths,
		Stats:   make(map[uint64]*profiler.BranchStats),
		Hard:    make(map[uint64]*profiler.HardProfile),
	}
	if p.Records, err = d.uvarint(); err != nil {
		return nil, err
	}
	if p.Instrs, err = d.uvarint(); err != nil {
		return nil, err
	}
	if p.CondExecs, err = d.uvarint(); err != nil {
		return nil, err
	}
	if p.Mispreds, err = d.uvarint(); err != nil {
		return nil, err
	}

	// Every stats entry is at least 4 payload bytes, so the count is
	// bounded by the remaining payload — a hostile count cannot force a
	// huge allocation.
	nStats, err := d.intval(uint64(d.remaining()) / 4)
	if err != nil {
		return nil, fmt.Errorf("%w (stats count)", err)
	}
	seq := newPCSeq()
	for k := 0; k < nStats; k++ {
		pc, err := seq.next(d)
		if err != nil {
			return nil, err
		}
		bs := &profiler.BranchStats{}
		if bs.Execs, err = d.uvarint(); err != nil {
			return nil, err
		}
		if bs.Misp, err = d.uvarint(); err != nil {
			return nil, err
		}
		if bs.Taken, err = d.uvarint(); err != nil {
			return nil, err
		}
		p.Stats[pc] = bs
	}

	minHard := uint64(6 + 12*len(lengths))
	nHard, err := d.intval(uint64(d.remaining()) / minHard)
	if err != nil {
		return nil, fmt.Errorf("%w (hard count)", err)
	}
	seq = newPCSeq()
	for k := 0; k < nHard; k++ {
		pc, err := seq.next(d)
		if err != nil {
			return nil, err
		}
		hp := &profiler.HardProfile{
			PC:  pc,
			T:   make([][256]uint32, len(lengths)),
			NT:  make([][256]uint32, len(lengths)),
			VT:  make([][256]uint32, len(lengths)),
			VNT: make([][256]uint32, len(lengths)),
		}
		if hp.Execs, err = d.uvarint(); err != nil {
			return nil, err
		}
		if hp.Misp, err = d.uvarint(); err != nil {
			return nil, err
		}
		if hp.MeasExecs, err = d.uvarint(); err != nil {
			return nil, err
		}
		if hp.MispMeas, err = d.uvarint(); err != nil {
			return nil, err
		}
		if hp.MispVal, err = d.uvarint(); err != nil {
			return nil, err
		}
		for i := range lengths {
			if err := d.hist(&hp.T[i]); err != nil {
				return nil, err
			}
			if err := d.hist(&hp.NT[i]); err != nil {
				return nil, err
			}
			if err := d.hist(&hp.VT[i]); err != nil {
				return nil, err
			}
			if err := d.hist(&hp.VNT[i]); err != nil {
				return nil, err
			}
		}
		p.Hard[pc] = hp
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- HINT section ------------------------------------------------------

func encodeTrain(tr *core.TrainResult, windowInstrs uint64) ([]byte, error) {
	p := tr.Params
	if p.MinHistory < 0 || p.MaxHistory < 0 || p.NumLengths < 0 {
		return nil, fmt.Errorf("store: negative training parameter")
	}
	if tr.Trained < 0 || tr.Duration < 0 {
		return nil, fmt.Errorf("store: negative training counters")
	}
	e := &enc{}
	e.uvarint(uint64(p.MinHistory))
	e.uvarint(uint64(p.MaxHistory))
	e.uvarint(uint64(p.NumLengths))
	e.float(p.ExploreFraction)
	e.uvarint(p.Seed)
	e.uvarint(p.MinExecs)
	e.float(p.MinGainFrac)
	e.uvarint(p.MinGainAbs)
	e.boolByte(p.HashedHistory)
	e.boolByte(p.ExtendedOps)
	e.boolByte(p.NoValidation)

	if err := encodeLengths(e, tr.Lengths); err != nil {
		return nil, err
	}
	e.uvarint(uint64(tr.Trained))
	e.uvarint(tr.FormulaEvals)
	e.uvarint(uint64(tr.Duration))
	e.uvarint(windowInstrs)

	e.uvarint(uint64(len(tr.Hints)))
	seq := newPCSeq()
	for _, pc := range sortedKeys(tr.Hints) {
		h := tr.Hints[pc]
		if h.LengthIdx < 0 || h.LengthIdx >= maxLengths {
			return nil, fmt.Errorf("store: hint %#x length index %d out of range", pc, h.LengthIdx)
		}
		if !h.Formula.Valid() {
			return nil, fmt.Errorf("store: hint %#x formula %#x invalid", pc, uint16(h.Formula))
		}
		if h.Bias > 2 {
			return nil, fmt.Errorf("store: hint %#x bias %d invalid", pc, h.Bias)
		}
		seq.emit(e, pc)
		e.uvarint(uint64(h.LengthIdx))
		e.uvarint(uint64(h.Formula))
		e.b = append(e.b, byte(h.Bias))
		e.uvarint(h.ProfiledMisp)
		e.uvarint(h.BaselineMisp)
		e.uvarint(h.ValMisp)
	}
	return e.b, nil
}

func decodeTrain(payload []byte) (*core.TrainResult, uint64, error) {
	d := &dec{b: payload}
	tr := &core.TrainResult{Hints: make(map[uint64]core.Hint)}
	var err error
	if tr.Params.MinHistory, err = d.intval(maxLengthValue); err != nil {
		return nil, 0, err
	}
	if tr.Params.MaxHistory, err = d.intval(maxLengthValue); err != nil {
		return nil, 0, err
	}
	if tr.Params.NumLengths, err = d.intval(maxLengths); err != nil {
		return nil, 0, err
	}
	if tr.Params.ExploreFraction, err = d.float(); err != nil {
		return nil, 0, err
	}
	if tr.Params.Seed, err = d.uvarint(); err != nil {
		return nil, 0, err
	}
	if tr.Params.MinExecs, err = d.uvarint(); err != nil {
		return nil, 0, err
	}
	if tr.Params.MinGainFrac, err = d.float(); err != nil {
		return nil, 0, err
	}
	if tr.Params.MinGainAbs, err = d.uvarint(); err != nil {
		return nil, 0, err
	}
	if tr.Params.HashedHistory, err = d.boolByte(); err != nil {
		return nil, 0, err
	}
	if tr.Params.ExtendedOps, err = d.boolByte(); err != nil {
		return nil, 0, err
	}
	if tr.Params.NoValidation, err = d.boolByte(); err != nil {
		return nil, 0, err
	}

	if tr.Lengths, err = decodeLengths(d); err != nil {
		return nil, 0, err
	}
	if tr.Trained, err = d.intval(math.MaxInt64); err != nil {
		return nil, 0, err
	}
	if tr.FormulaEvals, err = d.uvarint(); err != nil {
		return nil, 0, err
	}
	nanos, err := d.intval(math.MaxInt64)
	if err != nil {
		return nil, 0, err
	}
	tr.Duration = time.Duration(nanos)
	windowInstrs, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}

	nHints, err := d.intval(uint64(d.remaining()) / 7)
	if err != nil {
		return nil, 0, fmt.Errorf("%w (hint count)", err)
	}
	seq := newPCSeq()
	for k := 0; k < nHints; k++ {
		pc, err := seq.next(d)
		if err != nil {
			return nil, 0, err
		}
		h := core.Hint{PC: pc}
		if h.LengthIdx, err = d.intval(maxLengths - 1); err != nil {
			return nil, 0, err
		}
		f, err := d.intval(formula.NumFormulas - 1)
		if err != nil {
			return nil, 0, err
		}
		h.Formula = formula.Formula(f)
		b, err := d.byteVal()
		if err != nil {
			return nil, 0, err
		}
		if b > 2 {
			return nil, 0, fmt.Errorf("%w: bias byte %#x", ErrCorrupt, b)
		}
		h.Bias = hint.Bias(b)
		if h.ProfiledMisp, err = d.uvarint(); err != nil {
			return nil, 0, err
		}
		if h.BaselineMisp, err = d.uvarint(); err != nil {
			return nil, 0, err
		}
		if h.ValMisp, err = d.uvarint(); err != nil {
			return nil, 0, err
		}
		tr.Hints[pc] = h
	}
	if err := d.done(); err != nil {
		return nil, 0, err
	}
	return tr, windowInstrs, nil
}
