package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/profiler"
)

// testProfile builds a small but fully-populated profile covering every
// encoded field: plain stats, hard branches with non-trivial histograms,
// and totals.
func testProfile() *profiler.Profile {
	p := &profiler.Profile{
		Lengths:   []int{8, 16, 64},
		Stats:     map[uint64]*profiler.BranchStats{},
		Hard:      map[uint64]*profiler.HardProfile{},
		Records:   60000,
		Instrs:    345678,
		CondExecs: 23456,
		Mispreds:  1234,
	}
	p.Stats[0x401000] = &profiler.BranchStats{Execs: 100, Misp: 7, Taken: 60}
	p.Stats[0x401080] = &profiler.BranchStats{Execs: 4000, Misp: 900, Taken: 2100}
	p.Stats[0xffffffffffff0000] = &profiler.BranchStats{Execs: 1, Misp: 1, Taken: 0}
	for _, pc := range []uint64{0x401080, 0x77018843} {
		hp := &profiler.HardProfile{
			PC:        pc,
			T:         make([][256]uint32, 3),
			NT:        make([][256]uint32, 3),
			VT:        make([][256]uint32, 3),
			VNT:       make([][256]uint32, 3),
			Execs:     4000,
			Misp:      900,
			MeasExecs: 3990,
			MispMeas:  890,
			MispVal:   440,
		}
		for i := 0; i < 3; i++ {
			hp.T[i][0] = 5
			hp.T[i][17] = uint32(pc % 97)
			hp.NT[i][255] = math.MaxUint32
			hp.VT[i][128] = 1
			// VNT[i] stays all-zero: the all-zero histogram is its own
			// interesting RLE case.
		}
		p.Hard[pc] = hp
	}
	return p
}

func testTrain() *core.TrainResult {
	params := core.DefaultParams()
	params.ExploreFraction = 0.2
	return &core.TrainResult{
		Hints: map[uint64]core.Hint{
			0x401080: {PC: 0x401080, LengthIdx: 2, Formula: 0x7abc, Bias: hint.BiasNone,
				ProfiledMisp: 120, BaselineMisp: 900, ValMisp: 70},
			0x77018843: {PC: 0x77018843, Bias: hint.BiasTaken,
				ProfiledMisp: 0, BaselineMisp: 55, ValMisp: 0},
		},
		Params:       params,
		Lengths:      []int{8, 16, 64},
		Trained:      2,
		Duration:     1234567 * time.Nanosecond,
		FormulaEvals: 98765,
	}
}

func testArtifact() *Artifact {
	return &Artifact{
		Meta:         Meta{App: "mysql", Input: 3, Records: 60000, Key: "profile|v1|test"},
		Profile:      testProfile(),
		Train:        testTrain(),
		WindowInstrs: 345678,
	}
}

// TestRoundTrip checks Decode(Encode(a)) is a and the bytes are stable.
func TestRoundTrip(t *testing.T) {
	for name, a := range map[string]*Artifact{
		"full":         testArtifact(),
		"profile-only": {Meta: Meta{App: "kafka"}, Profile: testProfile()},
		"train-only":   {Meta: Meta{App: "nginx", Records: 1}, Train: testTrain(), WindowInstrs: 7},
		"meta-only":    {Meta: Meta{App: "", Input: 0, Records: 0, Key: "k"}},
		"empty-maps": {Meta: Meta{App: "x"}, Profile: &profiler.Profile{
			Lengths: []int{8},
			Stats:   map[uint64]*profiler.BranchStats{},
			Hard:    map[uint64]*profiler.HardProfile{},
		}},
	} {
		t.Run(name, func(t *testing.T) {
			data, err := Encode(a)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, a) {
				t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, a)
			}
			again, err := Encode(got)
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(again))
			}
		})
	}
}

func TestFileRoundTrip(t *testing.T) {
	a := testArtifact()
	path := filepath.Join(t.TempDir(), "artifact.wspa")
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatal("file round trip mismatch")
	}
	// No temp residue after the atomic rename.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected 1 file in dir, found %d", len(ents))
	}
}

// TestTypedErrors feeds the reader systematic mutations of a valid file
// (the same shapes the fuzzer generates) and checks each is rejected
// with the right sentinel.
func TestTypedErrors(t *testing.T) {
	valid, err := Encode(testArtifact())
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", valid[:5], ErrTruncated},
		{"bad-magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"future-version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], FormatVersion+1)
			return b
		}), ErrVersion},
		{"version-zero", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 0)
			return b
		}), ErrVersion},
		{"truncated-mid-section", valid[:len(valid)/2], ErrTruncated},
		{"truncated-by-one", valid[:len(valid)-1], ErrTruncated},
		{"payload-bitflip", mutate(func(b []byte) []byte { b[20] ^= 0x40; return b }), ErrCorrupt},
		{"crc-bitflip", mutate(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }), ErrCorrupt},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xAA), ErrCorrupt},
		{"zero-sections", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 0)
			return b
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode => %v, want %v", err, tc.want)
			}
		})
	}
}

// TestSectionOrderRejected ensures a structurally-valid file with its
// sections swapped is rejected: within a version there is exactly one
// encoding of every artifact.
func TestSectionOrderRejected(t *testing.T) {
	a := testArtifact()
	data, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the sections and rebuild the file with PROF and HINT swapped.
	type sec struct{ raw []byte }
	var secs []sec
	off := 8
	for off < len(data) {
		size := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		end := off + 8 + size + 4
		secs = append(secs, sec{raw: data[off:end]})
		off = end
	}
	if len(secs) != 3 {
		t.Fatalf("expected 3 sections, got %d", len(secs))
	}
	swapped := append([]byte(nil), data[:8]...)
	swapped = append(swapped, secs[0].raw...)
	swapped = append(swapped, secs[2].raw...)
	swapped = append(swapped, secs[1].raw...)
	if _, err := Decode(swapped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped sections => %v, want ErrCorrupt", err)
	}
	// A file that leads with a non-META section is also rejected.
	noMeta := append([]byte(nil), data[:8]...)
	binary.LittleEndian.PutUint16(noMeta[6:8], 2)
	noMeta = append(noMeta, secs[1].raw...)
	noMeta = append(noMeta, secs[2].raw...)
	if _, err := Decode(noMeta); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing META => %v, want ErrCorrupt", err)
	}
}

// TestNonMinimalVarintRejected hand-crafts a META section whose Input
// field uses a padded two-byte varint for a one-byte value.
func TestNonMinimalVarintRejected(t *testing.T) {
	// Canonical META: app "", input 3, records 0, key "".
	payload := []byte{0, 3, 0, 0}
	bad := []byte{0, 0x83, 0x00, 0, 0} // 3 encoded as 0x83 0x00
	for _, tc := range []struct {
		payload []byte
		wantErr bool
	}{{payload, false}, {bad, true}} {
		var file []byte
		file = append(file, fileMagic[:]...)
		file = binary.LittleEndian.AppendUint16(file, FormatVersion)
		file = binary.LittleEndian.AppendUint16(file, 1)
		file = append(file, secMeta[:]...)
		file = binary.LittleEndian.AppendUint32(file, uint32(len(tc.payload)))
		file = append(file, tc.payload...)
		file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(tc.payload))
		_, err := Decode(file)
		if tc.wantErr && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("padded varint => %v, want ErrCorrupt", err)
		}
		if !tc.wantErr && err != nil {
			t.Fatalf("canonical payload rejected: %v", err)
		}
	}
}

func TestFingerprint(t *testing.T) {
	p := testProfile()
	f1, err := Fingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("fingerprint not deterministic")
	}
	p.Hard[0x401080].T[0][3]++
	f3, err := Fingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("fingerprint ignores histogram content")
	}
}

// TestCache exercises the load/save flows, hit/miss accounting, and the
// corrupt-entry fallback.
func TestCache(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadProfile("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	prof := testProfile()
	if err := c.SaveProfile("k1", Meta{App: "mysql", Input: 0, Records: 60000}, prof); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LoadProfile("k1")
	if !ok {
		t.Fatal("miss after save")
	}
	if !reflect.DeepEqual(got, prof) {
		t.Fatal("cached profile differs")
	}
	// Different key: miss, even though a file exists.
	if _, ok := c.LoadProfile("k2"); ok {
		t.Fatal("hit for unsaved key")
	}

	tr := testTrain()
	if err := c.SaveTrain("t1", Meta{App: "mysql"}, tr, 345678); err != nil {
		t.Fatal(err)
	}
	gtr, ok := c.LoadTrain("t1")
	if !ok {
		t.Fatal("train miss after save")
	}
	if !reflect.DeepEqual(gtr, tr) {
		t.Fatal("cached train result differs")
	}

	st := c.Stats()
	if st.ProfileHits != 1 || st.ProfileMisses != 2 || st.TrainHits != 1 || st.TrainMisses != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}

	// Corrupt the profile entry on disk: the next load must miss,
	// count a rejection, and remove the bad file.
	path := c.path("profile", "k1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadProfile("k1"); ok {
		t.Fatal("hit on corrupt entry")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry not removed")
	}

	// A future-version entry is a miss but is left in place.
	if err := c.SaveProfile("k3", Meta{}, prof); err != nil {
		t.Fatal(err)
	}
	p3 := c.path("profile", "k3")
	data, err = os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(data[4:6], FormatVersion+1)
	if err := os.WriteFile(p3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadProfile("k3"); ok {
		t.Fatal("hit on future-version entry")
	}
	if _, err := os.Stat(p3); err != nil {
		t.Fatal("future-version entry should not be deleted")
	}
}

func TestOpenCacheEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Fatal("OpenCache(\"\") should fail")
	}
}
