package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/telemetry"
)

// Cache is a content-addressed artifact directory: one file per cache
// key, named by the key's hash, holding a profile snapshot or a trained
// hint bundle. Damaged, truncated, or future-version entries count as
// misses (the caller regenerates and overwrites), so a bad cache can
// slow a run down but never corrupt it.
type Cache struct {
	dir string

	profileHits, profileMisses atomic.Uint64
	trainHits, trainMisses     atomic.Uint64
	rejected                   atomic.Uint64
}

// CacheStats counts cache activity for the -timing report and tests.
type CacheStats struct {
	ProfileHits, ProfileMisses uint64
	TrainHits, TrainMisses     uint64
	// Rejected counts entries that existed on disk but failed to decode
	// (corrupt, truncated, or written by a newer format version).
	Rejected uint64
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		ProfileHits:   c.profileHits.Load(),
		ProfileMisses: c.profileMisses.Load(),
		TrainHits:     c.trainHits.Load(),
		TrainMisses:   c.trainMisses.Load(),
		Rejected:      c.rejected.Load(),
	}
}

// path maps a cache key to its file. The filename carries a hash, not
// the key; Meta.Key inside the artifact is compared against the full
// key on load, so a hash collision degrades to a miss.
func (c *Cache) path(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%s-%x.wspa", kind, sum[:16]))
}

// load reads the artifact stored under key, or nil on any miss.
func (c *Cache) load(kind, key string) *Artifact {
	sp := telemetry.StartSpan("cache.read")
	defer sp.End()
	p := c.path(kind, key)
	a, err := ReadFile(p)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.rejected.Add(1)
			counter("whisper_store_cache_rejected_total").Inc()
			// Future-version entries belong to a newer tool and are
			// left in place; anything else is damage, and removing it
			// lets the regenerated artifact take the slot cleanly.
			if !errors.Is(err, ErrVersion) {
				os.Remove(p)
			}
		}
		return nil
	}
	if a.Meta.Key != key {
		return nil
	}
	if r := telemetry.Default(); r != nil {
		if st, err := os.Stat(p); err == nil {
			r.Counter("whisper_store_cache_read_bytes_total").Add(uint64(st.Size()))
		}
	}
	return a
}

// save writes an artifact under key; failures are returned but callers
// may ignore them (a cache that cannot persist still computes).
func (c *Cache) save(kind, key string, a *Artifact) error {
	sp := telemetry.StartSpan("cache.write")
	defer sp.End()
	a.Meta.Key = key
	p := c.path(kind, key)
	if err := WriteFile(p, a); err != nil {
		return err
	}
	if r := telemetry.Default(); r != nil {
		if st, err := os.Stat(p); err == nil {
			r.Counter("whisper_store_cache_write_bytes_total").Add(uint64(st.Size()))
		}
	}
	return nil
}

// counter resolves a registry counter when telemetry is enabled; while
// disabled the nil result is a no-op sink.
func counter(name string) *telemetry.Counter {
	return telemetry.Default().Counter(name)
}

// LoadProfile returns the profile cached under key, if present and intact.
func (c *Cache) LoadProfile(key string) (*profiler.Profile, bool) {
	if a := c.load("profile", key); a != nil && a.Profile != nil {
		c.profileHits.Add(1)
		counter("whisper_store_cache_hits_total").Inc()
		return a.Profile, true
	}
	c.profileMisses.Add(1)
	counter("whisper_store_cache_misses_total").Inc()
	return nil, false
}

// SaveProfile caches a profile under key.
func (c *Cache) SaveProfile(key string, meta Meta, p *profiler.Profile) error {
	return c.save("profile", key, &Artifact{Meta: meta, Profile: p})
}

// LoadTrain returns the trained hint bundle cached under key.
func (c *Cache) LoadTrain(key string) (*core.TrainResult, bool) {
	if a := c.load("train", key); a != nil && a.Train != nil {
		c.trainHits.Add(1)
		counter("whisper_store_cache_hits_total").Inc()
		return a.Train, true
	}
	c.trainMisses.Add(1)
	counter("whisper_store_cache_misses_total").Inc()
	return nil, false
}

// SaveTrain caches a trained hint bundle under key.
func (c *Cache) SaveTrain(key string, meta Meta, tr *core.TrainResult, windowInstrs uint64) error {
	return c.save("train", key, &Artifact{Meta: meta, Train: tr, WindowInstrs: windowInstrs})
}
