package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode is the codec's safety net: arbitrary bytes must never
// panic, every failure must carry one of the typed sentinels, and —
// because the encoding is canonical — every successful decode must
// re-encode to exactly the input bytes.
func FuzzDecode(f *testing.F) {
	seed := func(a *Artifact) {
		data, err := Encode(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(testArtifact())
	seed(&Artifact{Meta: Meta{App: "kafka", Input: 1, Records: 42, Key: "k"}})
	seed(&Artifact{Meta: Meta{App: "nginx"}, Train: testTrain(), WindowInstrs: 99})
	f.Add([]byte{})
	f.Add([]byte("WSPA"))
	f.Add([]byte("WSPA\x01\x00\x01\x00META\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		again, err := Encode(a)
		if err != nil {
			t.Fatalf("decoded artifact fails to encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not identity:\nin  %x\nout %x", data, again)
		}
	})
}
