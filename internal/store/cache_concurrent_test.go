package store

// Concurrent cache access: the hint daemon and the experiments driver
// can share one content-addressed cache directory, from one process or
// several. WriteFile's temp-file-plus-rename commit means a reader sees
// either a miss or a complete artifact, never a torn one; this test
// locks that in under -race with readers and writers hammering the same
// keys through two Cache handles over the same directory (the
// two-process shape in miniature).

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCacheConcurrentReadWrite(t *testing.T) {
	dir := t.TempDir()
	writerCache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	readerCache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	const keys = 8
	const rounds = 40
	prof := testProfile()
	tr := testTrain()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				if err := writerCache.SaveProfile(key, Meta{App: "mysql", Records: 60000}, prof); err != nil {
					t.Errorf("SaveProfile %s: %v", key, err)
				}
				if err := writerCache.SaveTrain(key, Meta{App: "mysql"}, tr, 345678); err != nil {
					t.Errorf("SaveTrain %s: %v", key, err)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				// A miss (not yet written) is fine; a hit must decode to
				// exactly what the writer stores — never a torn artifact.
				if got, ok := readerCache.LoadProfile(key); ok {
					if got.Records != prof.Records || got.Instrs != prof.Instrs {
						t.Errorf("LoadProfile %s: torn read %+v", key, got)
					}
				}
				if got, ok := readerCache.LoadTrain(key); ok {
					if !reflect.DeepEqual(got.Hints, tr.Hints) {
						t.Errorf("LoadTrain %s: torn read", key)
					}
				}
			}
		}
	}()
	wg.Wait()

	// The directory is fully written now: every key must hit through
	// either handle, and nothing was rejected as damaged.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		if _, ok := readerCache.LoadProfile(key); !ok {
			t.Errorf("profile %s missing after the storm", key)
		}
		if _, ok := writerCache.LoadTrain(key); !ok {
			t.Errorf("train %s missing after the storm", key)
		}
	}
	if rej := readerCache.Stats().Rejected + writerCache.Stats().Rejected; rej != 0 {
		t.Errorf("%d artifacts rejected as damaged during concurrent access", rej)
	}
}
