// Package profiler models the in-production profile collection of the
// paper's usage model (§IV, step 1): Intel PT supplies the retired-branch
// trace and Intel LBR supplies the deployed predictor's per-branch
// accuracy ("br_misp_retired.conditional").
//
// Collection is two-pass over the same deterministic stream:
//
//  1. The accuracy pass drives the profiled predictor over the trace and
//     records per-branch execution/misprediction/taken counts — the LBR
//     view. It selects the "hard" branches worth analyzing.
//  2. The substream pass replays the trace maintaining only the global
//     history register and, for each hard-branch retirement, bins the
//     XOR-folded hashed history at each candidate length into taken /
//     not-taken histograms — exactly the T and NT inputs of the paper's
//     Algorithm 1.
package profiler

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
)

// BranchStats is the accuracy-pass view of one static branch.
type BranchStats struct {
	Execs uint64
	Misp  uint64
	Taken uint64

	// measured-window views (past the warm-up skip); exported via
	// HardProfile for hard branches.
	measExecs, mispMeas, mispVal uint64
}

// MispRate returns mispredictions per execution.
func (b *BranchStats) MispRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Misp) / float64(b.Execs)
}

// HardProfile is the substream-pass view: per-candidate-length hashed
// history histograms for one hard branch, split into a training half and
// a held-out validation half so trainers can reject formulas that merely
// fit noise (the profile-overfitting guard behind cross-input robustness,
// paper Fig 17).
//
// Per-branch execution e (0-based): the first WarmExecs executions train
// only (they carry the baseline predictor's cold-start noise); measured
// executions alternate between the training half (even) and the
// validation half (odd).
type HardProfile struct {
	PC uint64
	// T[i][h] counts taken retirements whose fold at Lengths[i] was h
	// in the training half; NT is the not-taken counterpart.
	T, NT [][256]uint32
	// VT / VNT are the validation-half counterparts.
	VT, VNT [][256]uint32
	// Execs and Misp copy the accuracy-pass counters (full window).
	Execs, Misp uint64
	// MeasExecs counts executions past the warm-up skip; MispMeas and
	// MispVal are the baseline predictor's mispredictions on the
	// measured window and on its validation half.
	MeasExecs, MispMeas, MispVal uint64
}

// Profile is the result of collection for one (application, input) pair.
type Profile struct {
	// Lengths are the candidate history lengths (Table III geometric
	// series by default).
	Lengths []int
	// Stats has the accuracy-pass counters for every conditional branch.
	Stats map[uint64]*BranchStats
	// Hard has substream histograms for the selected hard branches.
	Hard map[uint64]*HardProfile

	// Totals over the profiled window.
	Records, Instrs, CondExecs, Mispreds uint64
}

// Options tunes hard-branch selection.
type Options struct {
	// Lengths overrides the candidate lengths (default Table III).
	Lengths []int
	// MinExecs is the minimum executions for a branch to be considered.
	MinExecs uint64
	// MinMisp is the minimum mispredictions.
	MinMisp uint64
	// MinRate is the minimum misprediction rate.
	MinRate float64
	// MaxHard caps the number of profiled branches (highest
	// misprediction counts win); 0 means unlimited.
	MaxHard int
	// WarmExecs is the number of leading executions per branch excluded
	// from the measured baseline (the predictor's cold start would
	// otherwise overstate how beatable it is).
	WarmExecs uint64
}

// DefaultOptions balance coverage against profile size.
func DefaultOptions() Options {
	return Options{
		MinExecs:  12,
		MinMisp:   3,
		MinRate:   0.03,
		MaxHard:   4000,
		WarmExecs: 8,
	}
}

// Collect profiles the stream produced by mkStream under the given
// predictor. mkStream must return a fresh, identical stream on each call
// (deterministic replay stands in for re-reading the PT trace file).
// The predictor is mutated by the accuracy pass.
func Collect(mkStream func() trace.Stream, pred bpu.Predictor, opt Options) (*Profile, error) {
	if mkStream == nil || pred == nil {
		return nil, fmt.Errorf("profiler: nil stream factory or predictor")
	}
	sp := telemetry.StartSpan("profile")
	defer sp.End()
	if opt.Lengths == nil {
		opt.Lengths = bpu.DefaultGeomLengths
	}
	p := &Profile{
		Lengths: opt.Lengths,
		Stats:   make(map[uint64]*BranchStats),
		Hard:    make(map[uint64]*HardProfile),
	}

	// Pass 1: accuracy under the profiled predictor (the LBR view).
	s := mkStream()
	var rec trace.Record
	for s.Next(&rec) {
		p.Records++
		p.Instrs += uint64(rec.Instrs) + 1
		if rec.Kind != trace.CondBranch {
			continue
		}
		p.CondExecs++
		bs := p.Stats[rec.PC]
		if bs == nil {
			bs = &BranchStats{}
			p.Stats[rec.PC] = bs
		}
		e := bs.Execs
		bs.Execs++
		if rec.Taken {
			bs.Taken++
		}
		if o, ok := pred.(bpu.OraclePrimer); ok {
			o.Prime(rec.Taken)
		}
		misp := pred.Predict(rec.PC) != rec.Taken
		if misp {
			bs.Misp++
			p.Mispreds++
		}
		if e >= opt.WarmExecs {
			bs.measExecs++
			if misp {
				bs.mispMeas++
				if (e-opt.WarmExecs)&1 == 1 {
					bs.mispVal++
				}
			}
		}
		pred.Update(rec.PC, rec.Taken)
	}

	// Select hard branches.
	type cand struct {
		pc   uint64
		misp uint64
	}
	var cands []cand
	for pc, bs := range p.Stats {
		// Qualify on the measured window (past the per-branch warm-up):
		// a branch whose mispredictions are all predictor cold-start is
		// not hard, and hinting it only risks damage under input drift.
		measRate := 0.0
		if bs.measExecs > 0 {
			measRate = float64(bs.mispMeas) / float64(bs.measExecs)
		}
		if bs.Execs >= opt.MinExecs && bs.mispMeas >= opt.MinMisp && measRate >= opt.MinRate {
			cands = append(cands, cand{pc, bs.Misp})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].misp != cands[j].misp {
			return cands[i].misp > cands[j].misp
		}
		return cands[i].pc < cands[j].pc
	})
	if opt.MaxHard > 0 && len(cands) > opt.MaxHard {
		cands = cands[:opt.MaxHard]
	}
	for _, c := range cands {
		bs := p.Stats[c.pc]
		hp := &HardProfile{
			PC:        c.pc,
			T:         make([][256]uint32, len(opt.Lengths)),
			NT:        make([][256]uint32, len(opt.Lengths)),
			VT:        make([][256]uint32, len(opt.Lengths)),
			VNT:       make([][256]uint32, len(opt.Lengths)),
			Execs:     bs.Execs,
			Misp:      bs.Misp,
			MeasExecs: bs.measExecs,
			MispMeas:  bs.mispMeas,
			MispVal:   bs.mispVal,
		}
		p.Hard[c.pc] = hp
	}
	if len(p.Hard) == 0 {
		return p, nil
	}

	// Pass 2: substream histograms (the PT view).
	s = mkStream()
	var hist bpu.History
	execIdx := make(map[uint64]uint64, len(p.Hard))
	for s.Next(&rec) {
		if rec.Kind != trace.CondBranch {
			continue
		}
		if hp := p.Hard[rec.PC]; hp != nil {
			e := execIdx[rec.PC]
			execIdx[rec.PC] = e + 1
			validation := e >= opt.WarmExecs && (e-opt.WarmExecs)&1 == 1
			for i, l := range opt.Lengths {
				h := hist.Fold(l)
				switch {
				case validation && rec.Taken:
					hp.VT[i][h]++
				case validation:
					hp.VNT[i][h]++
				case rec.Taken:
					hp.T[i][h]++
				default:
					hp.NT[i][h]++
				}
			}
		}
		hist.Push(rec.Taken)
	}
	return p, nil
}

// MPKI returns branch mispredictions per kilo-instruction for the
// profiled window (CBP-5 methodology: conditional branches only).
func (p *Profile) MPKI() float64 {
	if p.Instrs == 0 {
		return 0
	}
	return float64(p.Mispreds) / float64(p.Instrs) * 1000
}

// HardPCs returns the profiled hard-branch PCs in descending
// misprediction order.
func (p *Profile) HardPCs() []uint64 {
	out := make([]uint64, 0, len(p.Hard))
	for pc := range p.Hard {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := p.Hard[out[i]], p.Hard[out[j]]
		if a.Misp != b.Misp {
			return a.Misp > b.Misp
		}
		return out[i] < out[j]
	})
	return out
}

// Clone returns a deep copy of p. Merge mutates its receiver, so
// callers holding shared (cached) profiles merge into a clone.
func (p *Profile) Clone() *Profile {
	q := &Profile{
		Lengths:   append([]int(nil), p.Lengths...),
		Stats:     make(map[uint64]*BranchStats, len(p.Stats)),
		Hard:      make(map[uint64]*HardProfile, len(p.Hard)),
		Records:   p.Records,
		Instrs:    p.Instrs,
		CondExecs: p.CondExecs,
		Mispreds:  p.Mispreds,
	}
	for pc, bs := range p.Stats {
		c := *bs
		q.Stats[pc] = &c
	}
	for pc, hp := range p.Hard {
		c := *hp
		c.T = append([][256]uint32(nil), hp.T...)
		c.NT = append([][256]uint32(nil), hp.NT...)
		c.VT = append([][256]uint32(nil), hp.VT...)
		c.VNT = append([][256]uint32(nil), hp.VNT...)
		q.Hard[pc] = &c
	}
	return q
}

// Merge folds other's counters and histograms into p (paper Fig 18:
// merging profiles from multiple inputs). Both profiles must use the same
// candidate lengths. Branches hard in either profile are hard in the
// merge.
func (p *Profile) Merge(other *Profile) error {
	if len(p.Lengths) != len(other.Lengths) {
		return fmt.Errorf("profiler: merging profiles with different length sets")
	}
	for i := range p.Lengths {
		if p.Lengths[i] != other.Lengths[i] {
			return fmt.Errorf("profiler: merging profiles with different length sets")
		}
	}
	p.Records += other.Records
	p.Instrs += other.Instrs
	p.CondExecs += other.CondExecs
	p.Mispreds += other.Mispreds
	for pc, obs := range other.Stats {
		bs := p.Stats[pc]
		if bs == nil {
			bs = &BranchStats{}
			p.Stats[pc] = bs
		}
		bs.Execs += obs.Execs
		bs.Misp += obs.Misp
		bs.Taken += obs.Taken
	}
	for pc, ohp := range other.Hard {
		hp := p.Hard[pc]
		if hp == nil {
			hp = &HardProfile{
				PC:  pc,
				T:   make([][256]uint32, len(p.Lengths)),
				NT:  make([][256]uint32, len(p.Lengths)),
				VT:  make([][256]uint32, len(p.Lengths)),
				VNT: make([][256]uint32, len(p.Lengths)),
			}
			p.Hard[pc] = hp
		}
		hp.Execs += ohp.Execs
		hp.Misp += ohp.Misp
		hp.MeasExecs += ohp.MeasExecs
		hp.MispMeas += ohp.MispMeas
		hp.MispVal += ohp.MispVal
		for i := range p.Lengths {
			for h := 0; h < 256; h++ {
				hp.T[i][h] += ohp.T[i][h]
				hp.NT[i][h] += ohp.NT[i][h]
				hp.VT[i][h] += ohp.VT[i][h]
				hp.VNT[i][h] += ohp.VNT[i][h]
			}
		}
	}
	return nil
}
