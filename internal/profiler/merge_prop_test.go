package profiler

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProfile builds a synthetic profile with only exported fields
// populated, the way a store round trip would produce one. Merge only
// touches exported state, so DeepEqual comparisons are meaningful.
func randomProfile(rng *rand.Rand, lengths []int) *Profile {
	p := &Profile{
		Lengths:   append([]int(nil), lengths...),
		Stats:     map[uint64]*BranchStats{},
		Hard:      map[uint64]*HardProfile{},
		Records:   uint64(rng.Intn(100000)),
		Instrs:    uint64(rng.Intn(1000000)),
		CondExecs: uint64(rng.Intn(100000)),
		Mispreds:  uint64(rng.Intn(10000)),
	}
	// Overlapping PC sets across profiles: draw from a small space.
	for i, n := 0, 3+rng.Intn(6); i < n; i++ {
		pc := 0x400000 + uint64(rng.Intn(16))*64
		p.Stats[pc] = &BranchStats{
			Execs: uint64(rng.Intn(5000)),
			Misp:  uint64(rng.Intn(500)),
			Taken: uint64(rng.Intn(5000)),
		}
	}
	for pc := range p.Stats {
		if rng.Intn(2) == 0 {
			continue
		}
		hp := &HardProfile{
			PC:        pc,
			T:         make([][256]uint32, len(lengths)),
			NT:        make([][256]uint32, len(lengths)),
			VT:        make([][256]uint32, len(lengths)),
			VNT:       make([][256]uint32, len(lengths)),
			Execs:     p.Stats[pc].Execs,
			Misp:      p.Stats[pc].Misp,
			MeasExecs: uint64(rng.Intn(5000)),
			MispMeas:  uint64(rng.Intn(500)),
			MispVal:   uint64(rng.Intn(250)),
		}
		for i := range lengths {
			for k := 0; k < 8; k++ {
				hp.T[i][rng.Intn(256)] += uint32(rng.Intn(100))
				hp.NT[i][rng.Intn(256)] += uint32(rng.Intn(100))
				hp.VT[i][rng.Intn(256)] += uint32(rng.Intn(100))
				hp.VNT[i][rng.Intn(256)] += uint32(rng.Intn(100))
			}
		}
		p.Hard[pc] = hp
	}
	return p
}

// mergeAll clones the first profile and merges the rest into it.
func mergeAll(t *testing.T, ps []*Profile) *Profile {
	t.Helper()
	acc := ps[0].Clone()
	for _, p := range ps[1:] {
		if err := acc.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// TestMergeOrderIndependence is the Fig 18 correctness property: merging
// a window list in any order yields identical counters, histograms, and
// MPKI. Each trial draws random profiles over overlapping PC sets and
// compares the identity permutation against shuffles.
func TestMergeOrderIndependence(t *testing.T) {
	lengths := []int{8, 16, 64}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 2 + rng.Intn(4)
		ps := make([]*Profile, n)
		for i := range ps {
			ps[i] = randomProfile(rng, lengths)
		}
		want := mergeAll(t, ps)
		for perm := 0; perm < 6; perm++ {
			shuffled := append([]*Profile(nil), ps...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got := mergeAll(t, shuffled)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d perm %d: merge order changed the result", trial, perm)
			}
			if got.MPKI() != want.MPKI() {
				t.Fatalf("trial %d perm %d: MPKI differs: %v vs %v", trial, perm, got.MPKI(), want.MPKI())
			}
		}
	}
}

// TestMergeLeavesSourcesIntact guards the cache-sharing contract: the
// merged-into clone must not alias the source profiles' maps or
// histogram slices.
func TestMergeLeavesSourcesIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomProfile(rng, []int{8, 16})
	b := randomProfile(rng, []int{8, 16})
	aCopy := a.Clone()
	bCopy := b.Clone()
	acc := mergeAll(t, []*Profile{a, b})
	if !reflect.DeepEqual(a, aCopy) || !reflect.DeepEqual(b, bCopy) {
		t.Fatal("merging into a clone mutated a source profile")
	}
	// Mutating the merge result must not leak back either.
	for pc, hp := range acc.Hard {
		hp.Execs += 1000
		for i := range hp.T {
			hp.T[i][0] += 9
		}
		_ = pc
	}
	acc.Records += 5
	if !reflect.DeepEqual(a, aCopy) || !reflect.DeepEqual(b, bCopy) {
		t.Fatal("merge result aliases a source profile")
	}
}

// TestMergeRejectsLengthMismatch covers the error path.
func TestMergeRejectsLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomProfile(rng, []int{8, 16})
	b := randomProfile(rng, []int{8, 32})
	if err := a.Clone().Merge(b); err == nil {
		t.Fatal("merging different length sets should fail")
	}
	c := randomProfile(rng, []int{8})
	if err := a.Clone().Merge(c); err == nil {
		t.Fatal("merging different length counts should fail")
	}
}
