package profiler

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

func mkApp(t *testing.T) *workload.App {
	t.Helper()
	app, err := workload.New(workload.Config{
		Name:           "prof-test",
		Seed:           7,
		Functions:      60,
		BranchesPerFn:  5,
		ZipfS:          0.6,
		InstrPerRecord: 5,
		Mix:            workload.Mix{Biased: 0.3, Loop: 0.1, ShortHist: 0.15, LongHist: 0.3, DataDep: 0.15},
		Noise:          0.01,
		Inputs:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestCollectBasics(t *testing.T) {
	app := mkApp(t)
	p, err := Collect(func() trace.Stream { return app.Stream(0, 40000) },
		tage.New(tage.DefaultConfig()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Records != 40000 {
		t.Fatalf("records %d", p.Records)
	}
	if p.CondExecs == 0 || p.Instrs <= p.Records {
		t.Fatalf("cond=%d instrs=%d", p.CondExecs, p.Instrs)
	}
	if p.Mispreds == 0 {
		t.Fatal("no mispredictions profiled")
	}
	if p.MPKI() <= 0 {
		t.Fatal("MPKI not positive")
	}
	if len(p.Hard) == 0 {
		t.Fatal("no hard branches selected")
	}
	if len(p.Lengths) != 16 {
		t.Fatalf("lengths = %v", p.Lengths)
	}
}

func TestCollectNilArgs(t *testing.T) {
	if _, err := Collect(nil, nil, Options{}); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestHistogramsConsistent(t *testing.T) {
	app := mkApp(t)
	p, err := Collect(func() trace.Stream { return app.Stream(0, 40000) },
		tage.New(tage.DefaultConfig()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pc, hp := range p.Hard {
		bs := p.Stats[pc]
		for i := range p.Lengths {
			var tkn, nt uint64
			for h := 0; h < 256; h++ {
				tkn += uint64(hp.T[i][h]) + uint64(hp.VT[i][h])
				nt += uint64(hp.NT[i][h]) + uint64(hp.VNT[i][h])
			}
			if tkn+nt != bs.Execs {
				t.Fatalf("pc %#x len %d: histogram mass %d != execs %d",
					pc, p.Lengths[i], tkn+nt, bs.Execs)
			}
			if tkn != bs.Taken {
				t.Fatalf("pc %#x len %d: taken mass %d != %d", pc, i, tkn, bs.Taken)
			}
		}
		if hp.MeasExecs > bs.Execs {
			t.Fatalf("pc %#x: measured execs %d exceed total %d", pc, hp.MeasExecs, bs.Execs)
		}
		if hp.MispVal > hp.MispMeas || hp.MispMeas > hp.Misp {
			t.Fatalf("pc %#x: inconsistent misp counters %d/%d/%d",
				pc, hp.MispVal, hp.MispMeas, hp.Misp)
		}
	}
}

func TestHardSelectionRespectsThresholds(t *testing.T) {
	app := mkApp(t)
	opt := DefaultOptions()
	opt.MinRate = 0.3 // very strict
	p, err := Collect(func() trace.Stream { return app.Stream(0, 30000) },
		tage.New(tage.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	for pc, hp := range p.Hard {
		if hp.MeasExecs == 0 {
			t.Fatalf("hard branch %#x has no measured executions", pc)
		}
		if rate := float64(hp.MispMeas) / float64(hp.MeasExecs); rate < 0.3 {
			t.Fatalf("hard branch %#x measured rate %v below threshold", pc, rate)
		}
	}
}

func TestMaxHardCap(t *testing.T) {
	app := mkApp(t)
	opt := DefaultOptions()
	opt.MaxHard = 5
	p, err := Collect(func() trace.Stream { return app.Stream(0, 30000) },
		tage.New(tage.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hard) > 5 {
		t.Fatalf("hard set %d exceeds cap", len(p.Hard))
	}
	// The capped set must be the top mispredictors.
	minHard := uint64(1 << 62)
	for pc := range p.Hard {
		if m := p.Stats[pc].Misp; m < minHard {
			minHard = m
		}
	}
	excluded := 0
	for pc, bs := range p.Stats {
		_, isHard := p.Hard[pc]
		qualifies := bs.Execs >= opt.MinExecs && bs.Misp >= opt.MinMisp && bs.MispRate() >= opt.MinRate
		if !isHard && qualifies && bs.Misp > minHard {
			excluded++
		}
	}
	if excluded > 0 {
		t.Fatalf("%d branches with more mispredictions than the hard set were excluded", excluded)
	}
}

func TestHardPCsSorted(t *testing.T) {
	app := mkApp(t)
	p, _ := Collect(func() trace.Stream { return app.Stream(0, 30000) },
		tage.New(tage.DefaultConfig()), DefaultOptions())
	pcs := p.HardPCs()
	for i := 1; i < len(pcs); i++ {
		if p.Hard[pcs[i-1]].Misp < p.Hard[pcs[i]].Misp {
			t.Fatal("HardPCs not sorted by mispredictions")
		}
	}
}

func TestOracleProfileHasNoMispredictions(t *testing.T) {
	app := mkApp(t)
	p, err := Collect(func() trace.Stream { return app.Stream(0, 20000) },
		&bpu.Oracle{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Mispreds != 0 || len(p.Hard) != 0 {
		t.Fatalf("oracle profile: misp=%d hard=%d", p.Mispreds, len(p.Hard))
	}
}

func TestMerge(t *testing.T) {
	app := mkApp(t)
	p0, _ := Collect(func() trace.Stream { return app.Stream(0, 20000) },
		tage.New(tage.DefaultConfig()), DefaultOptions())
	p1, _ := Collect(func() trace.Stream { return app.Stream(1, 20000) },
		tage.New(tage.DefaultConfig()), DefaultOptions())
	r0, m0 := p0.Records, p0.Mispreds
	if err := p0.Merge(p1); err != nil {
		t.Fatal(err)
	}
	if p0.Records != r0+p1.Records {
		t.Fatal("records not merged")
	}
	if p0.Mispreds != m0+p1.Mispreds {
		t.Fatal("mispredictions not merged")
	}
	// Histogram mass must equal merged exec counts for branches hard in
	// both.
	for pc, hp := range p0.Hard {
		var mass uint64
		for h := 0; h < 256; h++ {
			mass += uint64(hp.T[0][h]) + uint64(hp.NT[0][h]) +
				uint64(hp.VT[0][h]) + uint64(hp.VNT[0][h])
		}
		if mass != hp.Execs {
			t.Fatalf("pc %#x merged mass %d != execs %d", pc, mass, hp.Execs)
		}
	}
}

func TestMergeRejectsDifferentLengths(t *testing.T) {
	a := &Profile{Lengths: []int{8, 16}}
	b := &Profile{Lengths: []int{8, 32}}
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched lengths merged")
	}
	c := &Profile{Lengths: []int{8}}
	if err := a.Merge(c); err == nil {
		t.Fatal("different-size length sets merged")
	}
}

func BenchmarkCollect(b *testing.B) {
	app, _ := workload.New(workload.Config{
		Name: "bench", Seed: 9, Functions: 40, BranchesPerFn: 4,
		Mix: workload.Mix{Biased: 0.4, LongHist: 0.4, DataDep: 0.2},
	})
	for i := 0; i < b.N; i++ {
		Collect(func() trace.Stream { return app.Stream(0, 20000) },
			tage.New(tage.DefaultConfig()), DefaultOptions())
	}
}
