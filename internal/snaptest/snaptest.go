// Package snaptest is the shared property harness behind every
// predictor's snapshot-fidelity tests. It drives two independently
// constructed instances through the same deterministic branch stream
// and enforces the bpu.Snapshotter contract at several split points:
//
//   - Canonical encoding: instances in the same logical state produce
//     byte-identical snapshots (catches map-iteration-order leaks).
//   - Restore fidelity: restoring a snapshot into a fresh same-config
//     instance yields identical predictions over any suffix and an
//     identical final snapshot.
//   - Round-trip identity: Snapshot after Restore re-encodes to the
//     original byte string.
//   - No aliasing: Restore must not retain the input slice.
//   - Corruption safety: truncated or bit-flipped snapshots are
//     rejected with an error, never silently accepted.
//
// Each predictor package keeps a thin snapshot_test.go that calls
// Fidelity with its own constructors; the windowed pipeline engine
// (internal/pipeline) relies on exactly these properties to verify
// speculative windows by comparing canonical state bytes.
package snaptest

import (
	"bytes"
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// Step advances predictor p by one branch record. Implementations must
// be deterministic in (r, i) — draw the same random values on every
// call — so two instances can be driven through identical streams.
type Step func(p bpu.Predictor, r *xrand.Rand, i int)

// DefaultStep predicts and trains a pseudo-random conditional branch
// from a 1024-entry PC working set with mixed per-PC bias.
func DefaultStep(p bpu.Predictor, r *xrand.Rand, i int) {
	pc := 0x400000 + r.Uint64n(1024)*4
	p.Predict(pc)
	// Per-PC bias plus noise: exercises both strongly and weakly
	// biased table entries.
	taken := (pc>>2)%3 == 0 || r.Bool(0.3)
	p.Update(pc, taken)
}

// Fidelity checks the Snapshotter contract for the predictor built by
// mk. The predictor must implement bpu.Snapshotter; step may be nil to
// use DefaultStep.
func Fidelity(t *testing.T, mk func() bpu.Predictor, step Step) {
	t.Helper()
	if step == nil {
		step = DefaultStep
	}
	const n = 3000
	for _, split := range []int{0, 1, n / 3, n - 1, n} {
		run(t, mk, step, split, n)
	}
	corruption(t, mk, step)
}

func drive(p bpu.Predictor, step Step, seed uint64, from, to int) {
	r := xrand.New(seed)
	for i := from; i < to; i++ {
		step(p, r, i)
	}
}

func run(t *testing.T, mk func() bpu.Predictor, step Step, split, n int) {
	t.Helper()
	const seed = 0x5eed
	a := mk()
	snapA, ok := a.(bpu.Snapshotter)
	if !ok {
		t.Fatalf("%s does not implement bpu.Snapshotter", a.Name())
	}
	drive(a, step, seed, 0, split)
	s1 := snapA.Snapshot()

	// Canonical: an independent instance driven identically encodes to
	// the same bytes.
	twin := mk()
	drive(twin, step, seed, 0, split)
	if !bytes.Equal(twin.(bpu.Snapshotter).Snapshot(), s1) {
		t.Fatalf("split %d: identical histories, different snapshots (non-canonical encoding)", split)
	}

	// Restore into a fresh instance; round-trip must re-encode
	// identically, and Restore must not alias the input slice.
	b := mk()
	snapB := b.(bpu.Snapshotter)
	input := append([]byte(nil), s1...)
	if err := snapB.Restore(input); err != nil {
		t.Fatalf("split %d: Restore: %v", split, err)
	}
	for i := range input {
		input[i] ^= 0xFF
	}
	if got := snapB.Snapshot(); !bytes.Equal(got, s1) {
		t.Fatalf("split %d: snapshot round-trip mismatch (or Restore aliased its input)", split)
	}

	// Suffix equivalence: a and the restored b must behave identically
	// from here on. Both run the same Step stream; probes compare the
	// predictions themselves on a rotating PC set.
	ra, rb := xrand.New(seed+1), xrand.New(seed+1)
	for i := split; i < n; i++ {
		step(a, ra, i)
		step(b, rb, i)
		if i%97 == 0 {
			pc := 0x400000 + uint64(i%1024)*4
			if pa, pb := a.Predict(pc), b.Predict(pc); pa != pb {
				t.Fatalf("split %d: prediction diverges at suffix step %d (pc %#x): %v vs %v",
					split, i, pc, pa, pb)
			}
		}
	}
	fa, fb := snapA.Snapshot(), snapB.Snapshot()
	if !bytes.Equal(fa, fb) {
		t.Fatalf("split %d: final snapshots diverge after identical suffix", split)
	}
}

func corruption(t *testing.T, mk func() bpu.Predictor, step Step) {
	t.Helper()
	p := mk()
	drive(p, step, 0xbad5eed, 0, 500)
	s := p.(bpu.Snapshotter).Snapshot()

	fresh := func() bpu.Snapshotter { return mk().(bpu.Snapshotter) }
	if err := fresh().Restore(s[:len(s)/2]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if err := fresh().Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	// Flip one bit somewhere in the body; the checksum must catch it.
	for _, pos := range []int{len(s) / 3, 2 * len(s) / 3, len(s) - 1} {
		bad := append([]byte(nil), s...)
		bad[pos] ^= 1
		if err := fresh().Restore(bad); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
}
