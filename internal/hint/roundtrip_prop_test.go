package hint

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/formula"
)

// TestEncodeDecodeFullLattice sweeps the complete brhint field lattice —
// every history index and bias, the offset extremes, and a formula
// stride covering all 2^15 encodings across the sweep — and checks
// Encode/Decode is the identity on valid hints.
func TestEncodeDecodeFullLattice(t *testing.T) {
	offsets := []int16{-MaxOffset, -MaxOffset + 1, -1, 0, 1, MaxOffset - 2, MaxOffset - 1}
	var cases int
	for hist := 0; hist < 1<<HistoryBits; hist++ {
		for bias := Bias(0); bias < numBias; bias++ {
			for _, off := range offsets {
				// Stride the formula space so every encoding is hit at
				// least once across the (hist, bias, offset) sweep
				// while keeping the total around 1.5M iterations.
				for f := cases % 7; f < formula.NumFormulas; f += 7 {
					h := BrHint{
						HistIdx: uint8(hist),
						Formula: formula.Formula(f),
						Bias:    bias,
						Offset:  off,
					}
					enc, err := h.Encode()
					if err != nil {
						t.Fatalf("Encode(%+v): %v", h, err)
					}
					if enc >= 1<<TotalBits {
						t.Fatalf("Encode(%+v) = %#x exceeds %d bits", h, enc, TotalBits)
					}
					got, err := Decode(enc)
					if err != nil {
						t.Fatalf("Decode(Encode(%+v)): %v", h, err)
					}
					if got != h {
						t.Fatalf("round trip: got %+v want %+v", got, h)
					}
					cases++
				}
			}
		}
	}
	if cases < formula.NumFormulas {
		t.Fatalf("lattice sweep too small: %d cases", cases)
	}
}

// TestDecodeEncodeInverse walks encodings directly: every 33-bit value
// either fails Decode (invalid bias) or re-encodes to itself, so Decode
// is injective on the valid range.
func TestDecodeEncodeInverse(t *testing.T) {
	// Stride through the 33-bit space; the stride is odd so low-field
	// patterns (offset, bias) cycle through all residues.
	const stride = 104729 // prime
	var valid, invalid int
	for v := uint64(0); v < 1<<TotalBits; v += stride {
		h, err := Decode(v)
		if err != nil {
			invalid++
			continue
		}
		enc, err := h.Encode()
		if err != nil {
			t.Fatalf("Encode(Decode(%#x)): %v", v, err)
		}
		if enc != v {
			t.Fatalf("Decode(%#x) re-encodes to %#x", v, enc)
		}
		valid++
	}
	if valid == 0 || invalid == 0 {
		t.Fatalf("degenerate sweep: %d valid, %d invalid", valid, invalid)
	}
	// Above the 33-bit range Decode must refuse.
	if _, err := Decode(1 << TotalBits); err == nil {
		t.Fatal("Decode accepted a 34-bit value")
	}
}
