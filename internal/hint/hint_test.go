package hint

import (
	"testing"
	"testing/quick"

	"github.com/whisper-sim/whisper/internal/formula"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []BrHint{
		{HistIdx: 0, Formula: 0, Bias: BiasNone, Offset: 0},
		{HistIdx: 15, Formula: formula.NumFormulas - 1, Bias: BiasNotTaken, Offset: 2047},
		{HistIdx: 7, Formula: 0x1234, Bias: BiasTaken, Offset: -2048},
		{HistIdx: 3, Formula: 0x7FFF, Bias: BiasNone, Offset: -1},
	}
	for _, h := range cases {
		v, err := h.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", h, err)
		}
		if v >= 1<<TotalBits {
			t.Fatalf("encoding %#x exceeds %d bits", v, TotalBits)
		}
		got, err := Decode(v)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestTotalBitsIs33(t *testing.T) {
	if TotalBits != 33 {
		t.Fatalf("TotalBits = %d, want 33 (4+15+2+12)", TotalBits)
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	bad := []BrHint{
		{HistIdx: 16},
		{Formula: formula.NumFormulas},
		{Bias: 3},
		{Offset: 2048},
		{Offset: -2049},
	}
	for _, h := range bad {
		if _, err := h.Encode(); err == nil {
			t.Fatalf("bad hint %+v accepted", h)
		}
	}
}

func TestDecodeRejectsOverflow(t *testing.T) {
	if _, err := Decode(1 << TotalBits); err == nil {
		t.Fatal("oversized encoding accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(hi uint8, fo uint16, bi uint8, off int16) bool {
		h := BrHint{
			HistIdx: hi & 0xF,
			Formula: formula.Formula(fo & (formula.NumFormulas - 1)),
			Bias:    Bias(bi % 3),
			Offset:  int16(int32(off) % MaxOffset),
		}
		v, err := h.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(v)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferInsertLookup(t *testing.T) {
	b := NewBuffer(0)
	if b.Capacity() != BufferSize {
		t.Fatalf("default capacity %d", b.Capacity())
	}
	h := BrHint{HistIdx: 2, Formula: 7, Bias: BiasNone, Offset: 100}
	b.Insert(0x4000, h)
	got, ok := b.Lookup(0x4000)
	if !ok || got != h {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := b.Lookup(0x5000); ok {
		t.Fatal("phantom hit")
	}
	if b.Lookups != 2 || b.Hits != 1 || b.Inserts != 1 {
		t.Fatalf("counters: %d/%d/%d", b.Lookups, b.Hits, b.Inserts)
	}
	if b.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", b.HitRate())
	}
}

func TestBufferLRUEviction(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, BrHint{})
	b.Insert(2, BrHint{})
	b.Lookup(1) // 1 is now MRU
	b.Insert(3, BrHint{})
	if _, ok := b.Lookup(2); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := b.Lookup(1); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := b.Lookup(3); !ok {
		t.Fatal("new entry missing")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestBufferReinsertRefreshes(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, BrHint{HistIdx: 1})
	b.Insert(2, BrHint{})
	b.Insert(1, BrHint{HistIdx: 9}) // refresh + update payload
	b.Insert(3, BrHint{})           // must evict 2, not 1
	if _, ok := b.Lookup(2); ok {
		t.Fatal("refreshed entry was evicted instead of LRU")
	}
	got, ok := b.Lookup(1)
	if !ok || got.HistIdx != 9 {
		t.Fatalf("payload not updated: %+v %v", got, ok)
	}
}

func TestBufferCapacityOne(t *testing.T) {
	b := NewBuffer(1)
	b.Insert(1, BrHint{})
	b.Insert(2, BrHint{})
	if _, ok := b.Lookup(1); ok {
		t.Fatal("capacity-1 buffer retained two entries")
	}
	if _, ok := b.Lookup(2); !ok {
		t.Fatal("latest entry missing")
	}
}

func TestBufferStressConsistency(t *testing.T) {
	b := NewBuffer(32)
	for i := uint64(0); i < 10000; i++ {
		b.Insert(i%100, BrHint{HistIdx: uint8(i % 16)})
		if i%3 == 0 {
			b.Lookup(i % 97)
		}
		if b.Len() > 32 {
			t.Fatalf("buffer exceeded capacity: %d", b.Len())
		}
	}
	// Walk the LRU list and confirm it matches the map.
	n := 0
	for e := b.head; e != nil; e = e.next {
		if b.entries[e.pc] != e {
			t.Fatal("list/map divergence")
		}
		n++
	}
	if n != b.Len() {
		t.Fatalf("list length %d != map %d", n, b.Len())
	}
}
