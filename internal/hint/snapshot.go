package hint

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/snap"
)

// AppendState appends the buffer's canonical state: resident entries in
// recency order (most recent first) followed by the traffic counters.
// Capacity is construction-time configuration and not encoded.
func (b *Buffer) AppendState(dst []byte) []byte {
	dst = snap.U32(dst, uint32(len(b.entries)))
	for e := b.head; e != nil; e = e.next {
		dst = snap.U64(dst, e.pc)
		dst = snap.U8(dst, e.hint.HistIdx)
		dst = snap.U16(dst, uint16(e.hint.Formula))
		dst = snap.U8(dst, uint8(e.hint.Bias))
		dst = snap.I16(dst, e.hint.Offset)
	}
	dst = snap.U64(dst, b.Lookups)
	dst = snap.U64(dst, b.Hits)
	dst = snap.U64(dst, b.Inserts)
	return dst
}

// ReadState restores state written by AppendState. The receiver must
// have the snapshotted buffer's capacity.
func (b *Buffer) ReadState(r *snap.Reader) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n > b.capacity {
		return fmt.Errorf("hint: %d buffer entries exceed capacity %d", n, b.capacity)
	}
	ents := make([]*bufEntry, n)
	for i := range ents {
		e := &bufEntry{pc: r.U64()}
		e.hint.HistIdx = r.U8()
		e.hint.Formula = formula.Formula(r.U16())
		e.hint.Bias = Bias(r.U8())
		e.hint.Offset = r.I16()
		if r.Err() != nil {
			return r.Err()
		}
		if err := e.hint.Validate(); err != nil {
			return err
		}
		ents[i] = e
	}
	lookups, hits, inserts := r.U64(), r.U64(), r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	b.entries = make(map[uint64]*bufEntry, b.capacity)
	b.head, b.tail = nil, nil
	// Push in reverse recency order so the most recent entry ends up at
	// the head, matching the snapshotted list.
	for i := n - 1; i >= 0; i-- {
		e := ents[i]
		if _, dup := b.entries[e.pc]; dup {
			return fmt.Errorf("hint: duplicate buffer entry %#x", e.pc)
		}
		b.entries[e.pc] = e
		b.pushFront(e)
	}
	b.Lookups, b.Hits, b.Inserts = lookups, hits, inserts
	return nil
}
