// Package hint implements the brhint instruction Whisper injects at link
// time and the small hardware hint buffer that serves it at run time
// (paper §IV, Fig 11).
//
// A brhint carries four fields, 33 bits total:
//
//	History (4b) | Boolean formula (15b) | Bias (2b) | PC pointer (12b)
//
// History indexes the 16-entry geometric length series (Table III); the
// formula is the 15-bit extended-ROMBF encoding of internal/formula; Bias
// short-circuits always/never-taken branches; the PC pointer is the
// signed byte offset from the hint to its branch, which is what limits
// hint hosts to ±2KB of the branch.
package hint

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/formula"
)

// Bias is the 2-bit bias field.
type Bias uint8

// Bias values.
const (
	// BiasNone means the formula decides.
	BiasNone Bias = iota
	// BiasTaken forces always-taken.
	BiasTaken
	// BiasNotTaken forces never-taken.
	BiasNotTaken

	numBias
)

// Field widths of the brhint encoding.
const (
	HistoryBits = 4
	FormulaBits = formula.EncBits // 15
	BiasBits    = 2
	OffsetBits  = 12

	// TotalBits is the full brhint payload width.
	TotalBits = HistoryBits + FormulaBits + BiasBits + OffsetBits // 33
)

// MaxOffset is the reach of the 12-bit signed PC pointer in bytes.
const MaxOffset = 1 << (OffsetBits - 1) // 2048

// BrHint is a decoded brhint instruction.
type BrHint struct {
	// HistIdx selects one of the 16 geometric history lengths.
	HistIdx uint8
	// Formula is the 15-bit extended-ROMBF encoding.
	Formula formula.Formula
	// Bias short-circuits constant branches.
	Bias Bias
	// Offset is the signed byte distance from the hint to the branch
	// (branchPC = hintPC + Offset), in [-2048, 2047].
	Offset int16
}

// Validate checks field ranges.
func (h BrHint) Validate() error {
	if h.HistIdx >= 1<<HistoryBits {
		return fmt.Errorf("hint: history index %d exceeds %d bits", h.HistIdx, HistoryBits)
	}
	if !h.Formula.Valid() {
		return fmt.Errorf("hint: formula %#x exceeds %d bits", uint16(h.Formula), FormulaBits)
	}
	if h.Bias >= numBias {
		return fmt.Errorf("hint: bias %d invalid", h.Bias)
	}
	if h.Offset < -MaxOffset || h.Offset >= MaxOffset {
		return fmt.Errorf("hint: offset %d outside 12-bit signed range", h.Offset)
	}
	return nil
}

// Encode packs the hint into the low TotalBits of a uint64, layout
// (LSB first): offset(12) | bias(2) | formula(15) | history(4).
func (h BrHint) Encode() (uint64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	v := uint64(uint16(h.Offset)) & (1<<OffsetBits - 1)
	v |= uint64(h.Bias) << OffsetBits
	v |= uint64(h.Formula) << (OffsetBits + BiasBits)
	v |= uint64(h.HistIdx) << (OffsetBits + BiasBits + FormulaBits)
	return v, nil
}

// Decode unpacks an encoded brhint.
func Decode(v uint64) (BrHint, error) {
	if v >= 1<<TotalBits {
		return BrHint{}, fmt.Errorf("hint: encoding %#x exceeds %d bits", v, TotalBits)
	}
	raw := uint16(v & (1<<OffsetBits - 1))
	// Sign-extend the 12-bit offset.
	off := int16(raw << (16 - OffsetBits))
	off >>= 16 - OffsetBits
	h := BrHint{
		Offset:  off,
		Bias:    Bias((v >> OffsetBits) & (1<<BiasBits - 1)),
		Formula: formula.Formula((v >> (OffsetBits + BiasBits)) & (1<<FormulaBits - 1)),
		HistIdx: uint8(v >> (OffsetBits + BiasBits + FormulaBits)),
	}
	return h, h.Validate()
}

// BufferSize is the hint buffer capacity (Table III: 32 entries).
const BufferSize = 32

// Buffer is the small fully-associative LRU hint buffer. Executing a
// brhint inserts its parameters keyed by the branch PC it points at;
// prediction looks the branch PC up.
type Buffer struct {
	capacity int
	entries  map[uint64]*bufEntry
	// LRU list, most recent first.
	head, tail *bufEntry

	// Lookups and Hits count prediction-side traffic.
	Lookups, Hits uint64
	// Inserts counts executed hints.
	Inserts uint64
}

type bufEntry struct {
	pc         uint64
	hint       BrHint
	prev, next *bufEntry
}

// NewBuffer creates a buffer with the given capacity (default BufferSize
// when 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = BufferSize
	}
	return &Buffer{
		capacity: capacity,
		entries:  make(map[uint64]*bufEntry, capacity),
	}
}

// Len returns the number of resident entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Capacity returns the configured capacity.
func (b *Buffer) Capacity() int { return b.capacity }

// Insert records an executed hint for branchPC, refreshing recency.
func (b *Buffer) Insert(branchPC uint64, h BrHint) {
	b.Inserts++
	if e, ok := b.entries[branchPC]; ok {
		e.hint = h
		b.moveToFront(e)
		return
	}
	e := &bufEntry{pc: branchPC, hint: h}
	b.entries[branchPC] = e
	b.pushFront(e)
	if len(b.entries) > b.capacity {
		victim := b.tail
		b.unlink(victim)
		delete(b.entries, victim.pc)
	}
}

// Lookup returns the hint for branchPC if resident, refreshing recency.
func (b *Buffer) Lookup(branchPC uint64) (BrHint, bool) {
	b.Lookups++
	e, ok := b.entries[branchPC]
	if !ok {
		return BrHint{}, false
	}
	b.Hits++
	b.moveToFront(e)
	return e.hint, true
}

// HitRate returns Hits/Lookups.
func (b *Buffer) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}

func (b *Buffer) pushFront(e *bufEntry) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *Buffer) unlink(e *bufEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *Buffer) moveToFront(e *bufEntry) {
	if b.head == e {
		return
	}
	b.unlink(e)
	b.pushFront(e)
}
