// Hintinspect: look inside a Whisper optimization — which branches got
// hints, which history lengths and Boolean formulas were learned, and how
// the 33-bit brhint instructions encode them (paper Fig 11 / §III).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	whisper "github.com/whisper-sim/whisper"
)

func main() {
	appName := flag.String("app", "postgres", "application to inspect")
	records := flag.Int("records", 200_000, "profiled records")
	top := flag.Int("top", 15, "hints to print")
	flag.Parse()

	app := whisper.AppByName(*appName)
	if app == nil {
		log.Fatalf("unknown app %q", *appName)
	}
	build, err := whisper.Optimize(app, whisper.WithRecords(*records))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d hard branches profiled, %d hints trained, %d placed\n\n",
		app.Name(), len(build.Profile.Hard), len(build.Train.Hints), build.Binary.Placed)

	// Sort hints by how many baseline mispredictions they remove.
	type row struct {
		pc   uint64
		gain uint64
	}
	var rows []row
	for pc, h := range build.Train.Hints {
		rows = append(rows, row{pc, h.BaselineMisp - h.ProfiledMisp})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gain > rows[j].gain })
	if len(rows) > *top {
		rows = rows[:*top]
	}

	fmt.Printf("%-10s %-10s %-7s %-9s %s\n", "branch", "saves", "length", "kind", "formula")
	for _, r := range rows {
		h := build.Train.Hints[r.pc]
		kind, form, length := "formula", h.Formula.String(), ""
		switch h.Bias {
		case 1:
			kind, form = "always", "-"
		case 2:
			kind, form = "never", "-"
		default:
			length = fmt.Sprintf("%d", build.Train.Lengths[h.LengthIdx])
		}
		fmt.Printf("%#08x %-10d %-7s %-9s %s\n", r.pc, r.gain, length, kind, form)
	}

	// Show one encoded brhint, field by field.
	for host, hs := range build.Binary.ByHost {
		ph := hs[0]
		enc, _ := ph.Encoded.Encode()
		fmt.Printf("\nexample brhint @ host %#x -> branch %#x\n", host, ph.Hint.PC)
		fmt.Printf("  encoding: %#010x (33 bits)\n", enc)
		fmt.Printf("  history index: %d   formula: %#06x   bias: %d   offset: %+d bytes\n",
			ph.Encoded.HistIdx, uint16(ph.Encoded.Formula), ph.Encoded.Bias, ph.Encoded.Offset)
		fmt.Printf("  placement precision %.2f, recall %.2f (conditional-probability correlation)\n",
			ph.Placement.Precision, ph.Placement.Recall)
		break
	}
}
