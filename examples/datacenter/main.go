// Datacenter: the paper's headline evaluation in miniature — optimize all
// 12 Table I applications with Whisper, evaluate each on an unseen input,
// and print per-app baseline MPKI, misprediction reduction, and speedup
// (the shape of the paper's Figs 2, 12 and 13).
package main

import (
	"flag"
	"fmt"
	"log"

	whisper "github.com/whisper-sim/whisper"
)

func main() {
	records := flag.Int("records", 300_000, "records per application window")
	flag.Parse()

	fmt.Printf("%-16s %12s %12s %10s %8s\n",
		"application", "base MPKI", "whisper MPKI", "reduction", "speedup")
	var sumRed, sumSp float64
	apps := whisper.Apps()
	for _, app := range apps {
		build, err := whisper.Optimize(app, whisper.WithRecords(*records))
		if err != nil {
			log.Fatalf("%s: %v", app.Name(), err)
		}
		ev := build.Evaluate(1, *records)
		fmt.Printf("%-16s %12.2f %12.2f %9.1f%% %7.2f%%\n",
			app.Name(), ev.Baseline.MPKI(), ev.Whisper.MPKI(),
			ev.Reduction()*100, ev.Speedup()*100)
		sumRed += ev.Reduction()
		sumSp += ev.Speedup()
	}
	n := float64(len(apps))
	fmt.Printf("%-16s %12s %12s %9.1f%% %7.2f%%\n", "Avg", "", "",
		sumRed/n*100, sumSp/n*100)
}
