// Quickstart: optimize one data center application with Whisper and
// compare the updated binary against the 64KB TAGE-SC-L baseline on a
// different workload input — the paper's core usage model in ~30 lines.
package main

import (
	"fmt"
	"log"

	whisper "github.com/whisper-sim/whisper"
)

func main() {
	// 1. Pick an application from the paper's Table I catalog.
	app := whisper.AppByName("mysql")

	// 2. Profile it "in production" (input #0) and train hints offline.
	build, err := whisper.Optimize(app, whisper.WithRecords(200_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d hints, placed %d into the binary (+%.1f%% static instructions)\n",
		len(build.Train.Hints), build.Binary.Placed, build.Binary.StaticOverhead()*100)

	// 3. Deploy: evaluate on a different input (#1), as the paper does.
	ev := build.Evaluate(1, 200_000)
	fmt.Printf("baseline: IPC %.3f, branch-MPKI %.2f\n", ev.Baseline.IPC(), ev.Baseline.MPKI())
	fmt.Printf("whisper : IPC %.3f, branch-MPKI %.2f\n", ev.Whisper.IPC(), ev.Whisper.MPKI())
	fmt.Printf("==> %.1f%% fewer mispredictions, %.2f%% speedup\n",
		ev.Reduction()*100, ev.Speedup()*100)
}
