// Sweep: sensitivity of Whisper's gains to the baseline predictor budget
// (paper Fig 21) and to the randomized-formula-testing exploration
// fraction (paper Fig 15), on one application.
package main

import (
	"flag"
	"fmt"
	"log"

	whisper "github.com/whisper-sim/whisper"
)

func main() {
	appName := flag.String("app", "clang", "application to sweep")
	records := flag.Int("records", 200_000, "records per window")
	flag.Parse()

	app := whisper.AppByName(*appName)
	if app == nil {
		log.Fatalf("unknown app %q", *appName)
	}

	fmt.Println("== baseline predictor size sweep (Fig 21) ==")
	for _, kb := range []int{8, 32, 64, 256, 1024} {
		kb := kb
		baseline := func() whisper.Predictor { return whisper.NewTageSCL(kb) }
		build, err := whisper.Optimize(app,
			whisper.WithRecords(*records),
			whisper.WithPredictor(baseline))
		if err != nil {
			log.Fatal(err)
		}
		ev := build.Evaluate(1, *records)
		fmt.Printf("  %5dKB baseline: MPKI %.2f, whisper reduction %.1f%%\n",
			kb, ev.Baseline.MPKI(), ev.Reduction()*100)
	}

	fmt.Println("\n== randomized formula testing sweep (Fig 15) ==")
	for _, frac := range []float64{0.001, 0.01, 0.05, 1.0} {
		params := whisper.DefaultParams()
		params.ExploreFraction = frac
		build, err := whisper.Optimize(app,
			whisper.WithRecords(*records),
			whisper.WithParams(params))
		if err != nil {
			log.Fatal(err)
		}
		ev := build.Evaluate(1, *records)
		fmt.Printf("  explore %5.1f%%: %3d hints, reduction %5.1f%%, training %v\n",
			frac*100, len(build.Train.Hints), ev.Reduction()*100,
			build.Train.Duration.Round(1e6))
	}
}
