package whisper

import "testing"

func TestPublicAPIEndToEnd(t *testing.T) {
	app := AppByName("mysql")
	if app == nil {
		t.Fatal("mysql app missing")
	}
	opt := DefaultBuildOptions()
	opt.Records = 120000
	b, err := Optimize(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(b, app, 1, 120000, 0.3)
	if ev.Reduction() <= 0 {
		t.Fatalf("public API reduction %v", ev.Reduction())
	}
	if ev.HintPredictions == 0 || ev.HintExecutions == 0 {
		t.Fatal("hint counters empty")
	}
	t.Logf("reduction %.1f%%, speedup %.2f%%", ev.Reduction()*100, ev.Speedup()*100)
}

func TestPublicAppCatalog(t *testing.T) {
	if len(Apps()) != 12 {
		t.Fatalf("%d apps", len(Apps()))
	}
	if len(SpecApps()) != 10 {
		t.Fatalf("%d spec apps", len(SpecApps()))
	}
	if AppByName("nonesuch") != nil {
		t.Fatal("bogus app resolved")
	}
}

func TestPublicPredictors(t *testing.T) {
	app := AppByName("kafka")
	base := Measure(app, 0, 40000, NewTageSCL(64), 0.25)
	ideal := Measure(app, 0, 40000, NewOracle(), 0.25)
	unlimited := Measure(app, 0, 40000, NewMTageSC(), 0.25)
	if ideal.CondMisp != 0 {
		t.Fatal("oracle mispredicted")
	}
	if unlimited.CondMisp >= base.CondMisp {
		t.Fatalf("MTAGE (%d) not below baseline (%d)", unlimited.CondMisp, base.CondMisp)
	}
	if base.MPKI() <= 0 || base.IPC() <= 0 {
		t.Fatal("baseline metrics empty")
	}
}

func TestPublicCustomApp(t *testing.T) {
	app, err := NewApp(AppConfig{
		Name:          "custom",
		Seed:          1,
		Functions:     40,
		BranchesPerFn: 4,
		Mix:           Mix{Biased: 0.8, LongHist: 0.1, DataDep: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Measure(app, 0, 20000, NewTageSCL(64), 0)
	if res.CondExecs == 0 {
		t.Fatal("custom app produced no branches")
	}
}

func TestDefaultParamsTableIII(t *testing.T) {
	p := DefaultParams()
	if p.MinHistory != 8 || p.MaxHistory != 1024 || p.NumLengths != 16 {
		t.Fatalf("params %+v", p)
	}
}
