package whisper

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestOptionsAPIEndToEnd drives the v2 surface: functional options into
// Optimize, the Build.Evaluate method, a telemetry registry capturing
// the run, and a Save/Load artifact round trip.
func TestOptionsAPIEndToEnd(t *testing.T) {
	app := AppByName("mysql")
	reg := NewRegistry()
	b, err := Optimize(app,
		WithRecords(120000),
		WithParams(DefaultParams()),
		WithPredictor(func() Predictor { return NewTageSCL(64) }),
		WithWarmup(0.3),
		WithMachine(DefaultMachine()),
		WithTelemetry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	ev := b.Evaluate(1, 0) // records <= 0 reuses the training window
	if ev.Reduction() <= 0 {
		t.Fatalf("v2 reduction %v", ev.Reduction())
	}
	if total := ev.Baseline.Records + ev.Baseline.WarmupRecords; total != 120000 {
		t.Fatalf("default evaluation window %d, want training window", total)
	}
	if len(reg.Snapshot()) == 0 {
		t.Fatal("WithTelemetry registry captured nothing")
	}

	path := filepath.Join(t.TempDir(), "mysql.wspa")
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	a, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta.App != "mysql" || a.Meta.Records != 120000 {
		t.Fatalf("artifact meta %+v", a.Meta)
	}
	if a.Profile == nil || !reflect.DeepEqual(a.Train.Hints, b.Train.Hints) {
		t.Fatal("artifact round trip lost the profile or hints")
	}
}

// TestExplicitDefaultsMatchImplicit locks the defaulting contract the v1
// compatibility test used to cover: spelling out every default through
// the functional options produces bit-identical builds and evaluations
// to a bare Optimize call.
func TestExplicitDefaultsMatchImplicit(t *testing.T) {
	app := AppByName("kafka")
	const n = 60000

	explicit, err := Optimize(app,
		WithRecords(n),
		WithParams(DefaultParams()),
		WithPredictor(func() Predictor { return NewTageSCL(64) }),
		WithTrainInput(0),
		WithMachine(DefaultMachine()),
		WithWarmup(0.3),
	)
	if err != nil {
		t.Fatal(err)
	}
	implicit, err := Optimize(app, WithRecords(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(explicit.Train.Hints, implicit.Train.Hints) {
		t.Fatal("explicit and implicit builds diverge")
	}
	e1 := explicit.Evaluate(1, n)
	e2 := implicit.Evaluate(1, n)
	if e1.Baseline != e2.Baseline || e1.Whisper != e2.Whisper {
		t.Fatalf("explicit evaluation %+v != implicit %+v", e1, e2)
	}
}

// TestBlockSizeOptionInvariance: WithBlockSize must not change a single
// counter of the evaluation (the engine-equivalence guarantee surfaced
// at the API level).
func TestBlockSizeOptionInvariance(t *testing.T) {
	app := AppByName("drupal")
	const n = 60000
	want, err := Optimize(app, WithRecords(n), WithBlockSize(-1)) // scalar reference
	if err != nil {
		t.Fatal(err)
	}
	ref := want.Evaluate(1, n)
	for _, bs := range []int{0, 1, 7} {
		b, err := Optimize(app, WithRecords(n), WithBlockSize(bs))
		if err != nil {
			t.Fatal(err)
		}
		ev := b.Evaluate(1, n)
		if ev.Baseline != ref.Baseline || ev.Whisper != ref.Whisper {
			t.Fatalf("block %d: evaluation diverged from scalar reference", bs)
		}
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	app := AppByName("mysql")
	if app == nil {
		t.Fatal("mysql app missing")
	}
	b, err := Optimize(app, WithRecords(120000))
	if err != nil {
		t.Fatal(err)
	}
	ev := b.Evaluate(1, 120000)
	if ev.Reduction() <= 0 {
		t.Fatalf("public API reduction %v", ev.Reduction())
	}
	if ev.HintPredictions == 0 || ev.HintExecutions == 0 {
		t.Fatal("hint counters empty")
	}
	t.Logf("reduction %.1f%%, speedup %.2f%%", ev.Reduction()*100, ev.Speedup()*100)
}

func TestPublicAppCatalog(t *testing.T) {
	if len(Apps()) != 12 {
		t.Fatalf("%d apps", len(Apps()))
	}
	if len(SpecApps()) != 10 {
		t.Fatalf("%d spec apps", len(SpecApps()))
	}
	if AppByName("nonesuch") != nil {
		t.Fatal("bogus app resolved")
	}
}

// measureBaseline runs a bare predictor over one input through the
// supported surface: configure it as the baseline with WithPredictor and
// read Evaluation.Baseline (the standalone run of exactly that
// predictor). This is the replacement for the removed v1 Measure.
func measureBaseline(t *testing.T, app *App, p func() Predictor, records int, warmup float64) Result {
	t.Helper()
	b, err := Optimize(app, WithRecords(records), WithWarmup(warmup), WithPredictor(p))
	if err != nil {
		t.Fatal(err)
	}
	return b.Evaluate(0, records).Baseline
}

func TestPublicPredictors(t *testing.T) {
	app := AppByName("kafka")
	base := measureBaseline(t, app, func() Predictor { return NewTageSCL(64) }, 40000, 0.25)
	ideal := measureBaseline(t, app, NewOracle, 40000, 0.25)
	unlimited := measureBaseline(t, app, NewMTageSC, 40000, 0.25)
	if ideal.CondMisp != 0 {
		t.Fatal("oracle mispredicted")
	}
	if unlimited.CondMisp >= base.CondMisp {
		t.Fatalf("MTAGE (%d) not below baseline (%d)", unlimited.CondMisp, base.CondMisp)
	}
	if base.MPKI() <= 0 || base.IPC() <= 0 {
		t.Fatal("baseline metrics empty")
	}
}

func TestPublicCustomApp(t *testing.T) {
	app, err := NewApp(AppConfig{
		Name:          "custom",
		Seed:          1,
		Functions:     40,
		BranchesPerFn: 4,
		Mix:           Mix{Biased: 0.8, LongHist: 0.1, DataDep: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := measureBaseline(t, app, func() Predictor { return NewTageSCL(64) }, 20000, 0)
	if res.CondExecs == 0 {
		t.Fatal("custom app produced no branches")
	}
}

func TestDefaultParamsTableIII(t *testing.T) {
	p := DefaultParams()
	if p.MinHistory != 8 || p.MaxHistory != 1024 || p.NumLengths != 16 {
		t.Fatalf("params %+v", p)
	}
}
